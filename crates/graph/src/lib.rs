//! Graph substrate for the distributed expander-decomposition reproduction.
//!
//! This crate provides every graph-theoretic object used by
//! Chang & Saranurak (PODC 2019):
//!
//! * [`Graph`] — an undirected multigraph in CSR form with explicit
//!   **self-loop** bookkeeping. Self loops are load-bearing in the paper:
//!   whenever the decomposition removes an edge `{u, v}` it adds a self loop
//!   at both `u` and `v`, so vertex degrees (and hence volumes) never change.
//!   Each self loop contributes exactly 1 to `deg(v)` (following the
//!   convention of Spielman–Srivastava used by the paper).
//! * [`VertexSet`] and the cut toolkit ([`cut`]) — `∂(S)`, conductance
//!   `Φ(S)`, balance `bal(S)`, sparsity.
//! * Subgraph views ([`view`]) — the induced subgraph `G[S]` and the
//!   degree-preserving loop-augmented subgraph `G{S}`.
//! * Traversals ([`traversal`]) — BFS, connected components, diameter,
//!   `N^k(v)` balls.
//! * Generators ([`gen`]) — the workload families used by the experiments.
//! * Random-walk tools ([`walks`]) — the lazy walk operator
//!   `M = (AD⁻¹ + I)/2` and the truncation operator `[p]_ε`.
//! * Spectral tools ([`spectral`]) — power iteration, Cheeger bounds,
//!   sweep cuts and mixing-time estimation.
//!
//! # Example
//!
//! ```
//! use graph::prelude::*;
//!
//! // Two triangles joined by a bridge: {0,1,2} - {3,4,5}.
//! let g = GraphBuilder::new(6)
//!     .edges([(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3), (2, 3)])
//!     .build()
//!     .unwrap();
//! let s = VertexSet::from_iter(g.n(), [0u32, 1, 2]);
//! assert_eq!(g.boundary(&s), 1);
//! assert_eq!(g.volume(&s), 7); // 2+2+3
//! assert!(g.conductance(&s).unwrap() < 0.2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod error;
mod graph_impl;

pub mod cut;
pub mod gen;
pub mod io;
pub mod prelude;
pub mod seed;
pub mod spectral;
pub mod traversal;
pub mod view;
pub mod walks;
pub mod working;

pub use builder::GraphBuilder;
pub use cut::{Cut, VertexSet};
pub use error::GraphError;
pub use graph_impl::{EdgeIter, Graph, NeighborIter};
pub use seed::derive_seed;
pub use working::WorkingGraph;

/// Identifier of a vertex: a dense index in `0..n`.
///
/// Kept as a plain `u32` (rather than a newtype) because vertex ids are used
/// pervasively as slice indices; all public APIs validate ranges and return
/// [`GraphError::VertexOutOfRange`] on misuse.
pub type VertexId = u32;

/// Result alias for fallible graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
