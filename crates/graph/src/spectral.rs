//! Spectral toolkit: spectral gap estimation, Cheeger bounds, sweep cuts,
//! exact conductance on small graphs, and mixing-time estimation.
//!
//! These are the *verification* tools of the reproduction: the paper's
//! guarantees (`Φ(G{Vi}) ≥ φ`, `Θ(1/Φ) ≤ τ_mix ≤ Θ(log n/Φ²)`) are checked
//! against the quantities computed here.

use crate::walks::WalkDistribution;
use crate::{Cut, Graph, GraphError, Result, VertexId, VertexSet};

/// Estimate of the second-largest eigenvalue `λ₂` of the lazy walk matrix
/// `M`, produced by [`lazy_walk_lambda2`].
///
/// The lazy walk spectrum lies in `[0, 1]`, so the *spectral gap* is
/// `1 − λ₂` and the Cheeger inequalities give
/// `(1 − λ₂)/… ` bounds on conductance (see [`cheeger_lower_bound`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpectralGap {
    /// Estimated second eigenvalue of the lazy walk matrix.
    pub lambda2: f64,
    /// Power-iteration steps actually performed.
    pub iterations: usize,
}

/// Estimates `λ₂(M)` of the lazy random walk matrix by power iteration on
/// the component orthogonal to the stationary distribution.
///
/// Deterministic given `iters`; accuracy improves geometrically with the
/// gap. Intended for connected graphs — on disconnected graphs it returns
/// `λ₂ ≈ 1`.
///
/// # Errors
///
/// Returns [`GraphError::Empty`] if the graph has no edges.
pub fn lazy_walk_lambda2(g: &Graph, iters: usize) -> Result<SpectralGap> {
    let n = g.n();
    if n == 0 || g.total_volume() == 0 {
        return Err(GraphError::Empty {
            what: "graph volume",
        });
    }
    let vol = g.total_volume() as f64;
    // Work in the D^{1/2}-weighted inner product where M is symmetric:
    // <x, y>_D = Σ x(v)·y(v)/deg(v). The stationary density is
    // π(v) = deg(v)/vol; a vector x (a mass vector) is orthogonal to π iff
    // Σ x(v) = 0.
    let mut x: Vec<f64> = (0..n)
        .map(|v| {
            // Deterministic pseudo-random start, degree-weighted alternation.
            let sign = if v % 2 == 0 { 1.0 } else { -1.0 };
            sign * (1.0 + (v as f64 * 0.618).fract())
        })
        .collect();
    project_out_stationary(g, &mut x, vol);
    normalize_d(g, &mut x);
    let mut lambda = 0.0;
    for it in 0..iters {
        let y = apply_lazy_walk(g, &x);
        let mut y = y;
        project_out_stationary(g, &mut y, vol);
        // Rayleigh quotient in the D⁻¹ inner product.
        let num: f64 = y
            .iter()
            .zip(&x)
            .enumerate()
            .map(|(v, (yy, xx))| {
                let d = g.degree(v as VertexId) as f64;
                if d == 0.0 {
                    0.0
                } else {
                    yy * xx / d
                }
            })
            .sum();
        lambda = num; // x is D⁻¹-normalized.
        let norm = normalize_d(g, &mut y);
        if norm < 1e-300 {
            return Ok(SpectralGap {
                lambda2: 0.0,
                iterations: it,
            });
        }
        x = y;
    }
    Ok(SpectralGap {
        lambda2: lambda.clamp(0.0, 1.0),
        iterations: iters,
    })
}

fn apply_lazy_walk(g: &Graph, x: &[f64]) -> Vec<f64> {
    let n = g.n();
    let mut y = vec![0.0; n];
    for u in 0..n {
        let p = x[u];
        if p == 0.0 {
            continue;
        }
        let deg = g.degree(u as VertexId) as f64;
        if deg == 0.0 {
            y[u] += p;
            continue;
        }
        y[u] += p / 2.0 + p / 2.0 * (g.self_loops(u as VertexId) as f64 / deg);
        let share = p / (2.0 * deg);
        for &w in g.neighbors(u as VertexId) {
            y[w as usize] += share;
        }
    }
    y
}

fn project_out_stationary(g: &Graph, x: &mut [f64], vol: f64) {
    // Remove the π component: for mass vectors the invariant subspace is
    // span{π}; subtract (Σx) · π.
    let total: f64 = x.iter().sum();
    for (v, xx) in x.iter_mut().enumerate() {
        *xx -= total * g.degree(v as VertexId) as f64 / vol;
    }
}

fn normalize_d(g: &Graph, x: &mut [f64]) -> f64 {
    let norm: f64 = x
        .iter()
        .enumerate()
        .map(|(v, xx)| {
            let d = g.degree(v as VertexId) as f64;
            if d == 0.0 {
                0.0
            } else {
                xx * xx / d
            }
        })
        .sum::<f64>()
        .sqrt();
    if norm > 0.0 {
        for xx in x.iter_mut() {
            *xx /= norm;
        }
    }
    norm
}

/// Cheeger-type **lower bound** on the graph conductance from the lazy-walk
/// spectral gap: `Φ(G) ≥ (1 − λ₂)`, i.e. `Φ ≥ gap` (for the lazy walk the
/// standard normalized-Laplacian bound `Φ ≥ λ/2` becomes `Φ ≥ (2·(1−λ₂))/2`).
///
/// Used to certify that a decomposition piece really is an expander without
/// enumerating cuts.
pub fn cheeger_lower_bound(gap: &SpectralGap) -> f64 {
    // λ₂(M_lazy) = 1 − λ/2 where λ is the normalized-Laplacian eigenvalue;
    // Cheeger: Φ ≥ λ/2 = 1 − λ₂.
    1.0 - gap.lambda2
}

/// Exact minimum conductance by exhaustive enumeration of all `2^{n−1} − 1`
/// non-trivial cuts — feasible only for small graphs.
///
/// # Errors
///
/// Returns [`GraphError::InvalidParameter`] for `n > 24` and
/// [`GraphError::Empty`] for graphs with fewer than 2 vertices or zero
/// volume.
pub fn exact_conductance(g: &Graph) -> Result<f64> {
    let n = g.n();
    if n < 2 || g.total_volume() == 0 {
        return Err(GraphError::Empty {
            what: "graph for exact conductance",
        });
    }
    if n > 24 {
        return Err(GraphError::InvalidParameter {
            reason: format!("exact conductance infeasible for n = {n} > 24"),
        });
    }
    let mut best = f64::INFINITY;
    // Fix vertex 0 on one side to halve the enumeration.
    for bits in 1u32..(1 << (n - 1)) {
        let s = VertexSet::from_fn(n, |v| v != 0 && (bits >> (v - 1)) & 1 == 1);
        if s.is_empty() {
            continue;
        }
        if let Ok(cut) = Cut::new(g, s) {
            best = best.min(cut.conductance());
        }
    }
    if best.is_finite() {
        Ok(best)
    } else {
        Err(GraphError::ZeroVolumeSide)
    }
}

/// Result of a sweep cut: the best-conductance prefix of an ordering.
#[derive(Debug, Clone)]
pub struct SweepCut {
    /// Members of the best prefix.
    pub side: VertexSet,
    /// Conductance of that prefix cut.
    pub conductance: f64,
    /// Prefix length that achieved it.
    pub prefix_len: usize,
}

/// Sweeps prefixes of `order` and returns the minimum-conductance prefix
/// (prefixes with a zero-volume side are skipped). `O(m)` total.
///
/// # Errors
///
/// Returns [`GraphError::Empty`] if no valid prefix exists.
pub fn sweep_cut(g: &Graph, order: &[VertexId]) -> Result<SweepCut> {
    if order.is_empty() {
        return Err(GraphError::Empty {
            what: "sweep order",
        });
    }
    let total_vol = g.total_volume();
    let mut in_prefix = vec![false; g.n()];
    let mut vol = 0usize;
    let mut boundary = 0usize;
    let mut best: Option<(f64, usize)> = None;
    for (i, &v) in order.iter().enumerate() {
        in_prefix[v as usize] = true;
        vol += g.degree(v);
        // Each neighbor already inside removes one boundary edge; each
        // outside adds one.
        for &w in g.neighbors(v) {
            if in_prefix[w as usize] {
                boundary -= 1;
            } else {
                boundary += 1;
            }
        }
        let other = total_vol - vol;
        if vol == 0 || other == 0 {
            continue;
        }
        let phi = boundary as f64 / vol.min(other) as f64;
        if best.map_or(true, |(b, _)| phi < b) {
            best = Some((phi, i + 1));
        }
    }
    let (conductance, prefix_len) = best.ok_or(GraphError::Empty {
        what: "valid sweep prefix",
    })?;
    let side = VertexSet::from_iter(g.n(), order[..prefix_len].iter().copied());
    Ok(SweepCut {
        side,
        conductance,
        prefix_len,
    })
}

/// Estimated mixing time: the smallest `t` such that the lazy walk started
/// at each of the `starts` is within total-variation distance `tv_target`
/// of stationarity, capped at `max_t`.
///
/// With `starts` covering the extremes (e.g. min-degree vertices, diameter
/// endpoints) this is a practical stand-in for the worst-case τ_mix used by
/// the paper's Jerrum–Sinclair bound `Θ(1/Φ) ≤ τ_mix ≤ Θ(log n/Φ²)`.
///
/// Returns `None` if some start has not mixed within `max_t` steps.
pub fn mixing_time(g: &Graph, starts: &[VertexId], tv_target: f64, max_t: usize) -> Option<usize> {
    let mut worst = 0usize;
    for &s in starts {
        let mut p = WalkDistribution::dirac(g, s);
        let mut t = 0usize;
        while p.tv_from_stationary(g) > tv_target {
            if t >= max_t {
                return None;
            }
            p.step(g);
            t += 1;
        }
        worst = worst.max(t);
    }
    Some(worst)
}

/// Picks canonical extreme starting vertices for [`mixing_time`]: a
/// minimum-degree vertex and the two endpoints of a double-sweep
/// approximate diameter path.
pub fn extreme_starts(g: &Graph) -> Vec<VertexId> {
    if g.n() == 0 {
        return Vec::new();
    }
    let mut starts = Vec::new();
    let min_deg_v = (0..g.n() as VertexId)
        .min_by_key(|&v| g.degree(v))
        .unwrap_or(0);
    starts.push(min_deg_v);
    let d0 = crate::traversal::bfs_distances(g, 0);
    if let Some((far, _)) = d0
        .iter()
        .enumerate()
        .filter(|(_, &d)| d != crate::traversal::UNREACHABLE)
        .max_by_key(|(_, &d)| d)
    {
        starts.push(far as VertexId);
    }
    starts.sort_unstable();
    starts.dedup();
    starts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn exact_conductance_of_barbell() {
        let (g, left) = gen::barbell(4).unwrap();
        let phi = exact_conductance(&g).unwrap();
        let planted = g.conductance(&left).unwrap();
        assert!((phi - planted).abs() < 1e-12, "planted cut is optimal");
    }

    #[test]
    fn exact_conductance_of_complete_graph() {
        let g = gen::complete(6).unwrap();
        let phi = exact_conductance(&g).unwrap();
        // K6: best cut is 3/3 split: boundary 9, min vol 15 -> 0.6.
        assert!((phi - 0.6).abs() < 1e-12);
    }

    #[test]
    fn exact_conductance_guards() {
        assert!(exact_conductance(&gen::path(1).unwrap()).is_err());
        let big = gen::path(30).unwrap();
        assert!(matches!(
            exact_conductance(&big),
            Err(GraphError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn lambda2_small_on_clique_large_on_barbell() {
        let clique = gen::complete(16).unwrap();
        let gap_clique = lazy_walk_lambda2(&clique, 200).unwrap();
        let (bar, _) = gen::barbell(8).unwrap();
        let gap_bar = lazy_walk_lambda2(&bar, 400).unwrap();
        assert!(
            gap_clique.lambda2 < gap_bar.lambda2,
            "clique should mix faster: {} vs {}",
            gap_clique.lambda2,
            gap_bar.lambda2
        );
        assert!(gap_bar.lambda2 > 0.9, "barbell has tiny gap");
    }

    #[test]
    fn cheeger_lower_bound_is_valid() {
        for g in [
            gen::complete(10).unwrap(),
            gen::cycle(12).unwrap(),
            gen::barbell(5).unwrap().0,
            gen::hypercube(4).unwrap(),
        ] {
            let gap = lazy_walk_lambda2(&g, 600).unwrap();
            let lower = cheeger_lower_bound(&gap);
            let exact = exact_conductance(&g).unwrap();
            assert!(
                lower <= exact + 1e-6,
                "cheeger bound {lower} exceeds exact {exact}"
            );
        }
    }

    #[test]
    fn sweep_cut_finds_barbell_bottleneck() {
        let (g, left) = gen::barbell(6).unwrap();
        // Order vertices with the left clique first — the sweep should find
        // the planted cut exactly.
        let mut order: Vec<VertexId> = left.iter().collect();
        order.extend(left.complement().iter());
        let sc = sweep_cut(&g, &order).unwrap();
        assert_eq!(sc.prefix_len, 6);
        let planted = g.conductance(&left).unwrap();
        assert!((sc.conductance - planted).abs() < 1e-12);
    }

    #[test]
    fn sweep_cut_skips_trivial_sides() {
        let g = gen::path(4).unwrap();
        let order: Vec<VertexId> = (0..4).collect();
        let sc = sweep_cut(&g, &order).unwrap();
        assert!(sc.prefix_len < 4, "full prefix has a zero-volume side");
        assert!(sweep_cut(&g, &[]).is_err());
    }

    #[test]
    fn mixing_time_orders_families_correctly() {
        let expander = gen::random_regular(64, 8, 1).unwrap();
        let (barbell, _) = gen::barbell(16).unwrap();
        let t_exp = mixing_time(&expander, &extreme_starts(&expander), 0.25, 10_000).unwrap();
        let t_bar = mixing_time(&barbell, &extreme_starts(&barbell), 0.25, 100_000).unwrap();
        assert!(
            t_exp * 5 < t_bar,
            "expander mixes much faster: {t_exp} vs {t_bar}"
        );
    }

    #[test]
    fn mixing_time_respects_cap() {
        let (barbell, _) = gen::barbell(12).unwrap();
        assert_eq!(mixing_time(&barbell, &[0], 0.01, 3), None);
    }

    #[test]
    fn extreme_starts_nonempty_and_valid() {
        let g = gen::grid(5, 5).unwrap();
        let starts = extreme_starts(&g);
        assert!(!starts.is_empty());
        assert!(starts.iter().all(|&v| (v as usize) < g.n()));
    }

    #[test]
    fn jerrum_sinclair_sandwich_on_cycle() {
        // Θ(1/Φ) ≤ τ_mix ≤ Θ(log n / Φ²): check the *shape* on C_n where
        // Φ = Θ(1/n) and τ_mix = Θ(n²).
        let g = gen::cycle(32).unwrap();
        let phi = 2.0 / (g.total_volume() as f64 / 2.0); // boundary 2 / vol n
        let t = mixing_time(&g, &extreme_starts(&g), 0.25, 100_000).unwrap() as f64;
        assert!(t >= 0.05 / phi, "mixing faster than conductance allows");
        let n = g.n() as f64;
        assert!(
            t <= 20.0 * n.ln() / (phi * phi),
            "mixing slower than the JS upper bound shape"
        );
    }
}
