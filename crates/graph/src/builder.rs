//! Incremental construction of [`Graph`] values.

use crate::{Graph, Result, VertexId};

/// Builder for [`Graph`] supporting incremental edge insertion.
///
/// Useful when a generator or a parser produces edges one at a time. For a
/// ready-made edge list, [`Graph::from_edges`] is equivalent and shorter.
///
/// # Example
///
/// ```
/// use graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.edge(0, 1).edge(1, 2);
/// b.edges([(2, 3), (3, 0)]);
/// let g = b.build().unwrap();
/// assert_eq!(g.m(), 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    loops: Vec<(VertexId, u32)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        GraphBuilder {
            n,
            edges: Vec::new(),
            loops: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}` (or a self loop when `u == v`).
    pub fn edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.edges.push((u, v));
        self
    }

    /// Adds every edge from the iterator.
    pub fn edges<I>(&mut self, iter: I) -> &mut Self
    where
        I: IntoIterator<Item = (VertexId, VertexId)>,
    {
        self.edges.extend(iter);
        self
    }

    /// Adds `count` self loops at `v`.
    pub fn self_loops(&mut self, v: VertexId, count: u32) -> &mut Self {
        self.loops.push((v, count));
        self
    }

    /// Number of edges recorded so far (loops included).
    pub fn pending_edges(&self) -> usize {
        self.edges.len() + self.loops.len()
    }

    /// Builds the graph.
    ///
    /// # Errors
    ///
    /// Returns [`crate::GraphError::VertexOutOfRange`] if any recorded
    /// endpoint is `>= n`.
    pub fn build(&self) -> Result<Graph> {
        let loop_edges = self
            .loops
            .iter()
            .flat_map(|&(v, c)| std::iter::repeat((v, v)).take(c as usize));
        Graph::from_edges(self.n, self.edges.iter().copied().chain(loop_edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_matches_from_edges() {
        let mut b = GraphBuilder::new(3);
        b.edge(0, 1).edge(1, 2).self_loops(2, 2);
        let g = b.build().unwrap();
        let h = Graph::from_edges(3, [(0, 1), (1, 2), (2, 2), (2, 2)]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn builder_reports_pending() {
        let mut b = GraphBuilder::new(2);
        b.edges([(0, 1)]);
        b.self_loops(0, 5);
        assert_eq!(b.pending_edges(), 2);
    }

    #[test]
    fn builder_propagates_range_errors() {
        let mut b = GraphBuilder::new(2);
        b.edge(0, 9);
        assert!(b.build().is_err());
    }

    #[test]
    fn default_builder_is_empty_graph() {
        let g = GraphBuilder::default().build().unwrap();
        assert_eq!(g.n(), 0);
    }
}
