//! Convenience re-exports: `use graph::prelude::*;` pulls in the types
//! needed by almost every consumer of this crate.

pub use crate::cut::{Cut, VertexSet};
pub use crate::gen;
pub use crate::graph_impl::Graph;
pub use crate::spectral;
pub use crate::traversal;
pub use crate::view::{AdjacencyView, Subgraph};
pub use crate::walks::WalkDistribution;
pub use crate::working::WorkingGraph;
pub use crate::{GraphBuilder, GraphError, VertexId};
