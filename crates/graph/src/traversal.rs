//! Breadth-first traversal, connected components, diameter, and `N^k(v)`
//! distance balls.

use crate::{Graph, GraphError, Result, VertexId, VertexSet};
use std::collections::VecDeque;

/// Distance label for unreachable vertices in [`bfs_distances`].
pub const UNREACHABLE: u32 = u32::MAX;

/// Single-source BFS distances (self loops never shorten paths).
///
/// Unreachable vertices get [`UNREACHABLE`].
///
/// # Example
///
/// ```
/// use graph::{Graph, traversal};
///
/// let g = Graph::from_edges(4, [(0, 1), (1, 2)]).unwrap();
/// let d = traversal::bfs_distances(&g, 0);
/// assert_eq!(&d[..3], &[0, 1, 2]);
/// assert_eq!(d[3], traversal::UNREACHABLE);
/// ```
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[source as usize] = 0;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The ball `N^k(v) = {u : dist(u, v) ≤ k}` (includes `v` itself).
pub fn ball(g: &Graph, v: VertexId, k: u32) -> VertexSet {
    let mut dist = vec![UNREACHABLE; g.n()];
    let mut queue = VecDeque::new();
    dist[v as usize] = 0;
    queue.push_back(v);
    let mut members = vec![v];
    while let Some(u) = queue.pop_front() {
        let du = dist[u as usize];
        if du == k {
            continue;
        }
        for &w in g.neighbors(u) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = du + 1;
                members.push(w);
                queue.push_back(w);
            }
        }
    }
    VertexSet::from_iter(g.n(), members)
}

/// Number of edges with both endpoints inside the ball `N^k(v)`
/// (`|E(N^k(v))|` in the paper's notation; self loops excluded).
pub fn ball_edge_count(g: &Graph, v: VertexId, k: u32) -> usize {
    let b = ball(g, v, k);
    g.internal_edges(&b)
}

/// Connected components as vertex sets (singletons included).
pub fn connected_components(g: &Graph) -> Vec<VertexSet> {
    let n = g.n();
    let mut comp = vec![usize::MAX; n];
    let mut count = 0usize;
    for start in 0..n as VertexId {
        if comp[start as usize] != usize::MAX {
            continue;
        }
        let id = count;
        count += 1;
        comp[start as usize] = id;
        let mut queue = VecDeque::from([start]);
        while let Some(u) = queue.pop_front() {
            for &w in g.neighbors(u) {
                if comp[w as usize] == usize::MAX {
                    comp[w as usize] = id;
                    queue.push_back(w);
                }
            }
        }
    }
    let mut sets: Vec<Vec<VertexId>> = vec![Vec::new(); count];
    for v in 0..n as VertexId {
        sets[comp[v as usize]].push(v);
    }
    sets.into_iter()
        .map(|vs| VertexSet::from_iter(n, vs))
        .collect()
}

/// Whether `g` is connected (the empty graph counts as connected).
pub fn is_connected(g: &Graph) -> bool {
    if g.n() == 0 {
        return true;
    }
    bfs_distances(g, 0).iter().all(|&d| d != UNREACHABLE)
}

/// Exact diameter via BFS from every vertex: `O(n·m)`.
///
/// # Errors
///
/// Returns [`GraphError::NotConnected`] for disconnected graphs and
/// [`GraphError::Empty`] for the empty graph.
pub fn diameter(g: &Graph) -> Result<u32> {
    if g.n() == 0 {
        return Err(GraphError::Empty { what: "graph" });
    }
    let mut best = 0u32;
    for v in 0..g.n() as VertexId {
        let d = bfs_distances(g, v);
        for &x in &d {
            if x == UNREACHABLE {
                return Err(GraphError::NotConnected);
            }
            best = best.max(x);
        }
    }
    Ok(best)
}

/// Lower bound on the diameter by a double BFS sweep: `O(m)`.
///
/// Exact on trees; never exceeds the true diameter.
///
/// # Errors
///
/// Returns [`GraphError::NotConnected`] / [`GraphError::Empty`] as
/// [`diameter`] does.
pub fn diameter_double_sweep(g: &Graph) -> Result<u32> {
    if g.n() == 0 {
        return Err(GraphError::Empty { what: "graph" });
    }
    let d0 = bfs_distances(g, 0);
    let far = farthest(&d0)?;
    let d1 = bfs_distances(g, far);
    let far2 = farthest(&d1)?;
    Ok(d1[far2 as usize])
}

fn farthest(dist: &[u32]) -> Result<VertexId> {
    let mut best = 0;
    let mut arg = 0;
    for (v, &d) in dist.iter().enumerate() {
        if d == UNREACHABLE {
            return Err(GraphError::NotConnected);
        }
        if d >= best {
            best = d;
            arg = v;
        }
    }
    Ok(arg as VertexId)
}

/// Diameter of the subgraph induced by `s` (distances constrained to `s`).
///
/// # Errors
///
/// Propagates [`GraphError`] from [`diameter`] (empty / disconnected piece).
pub fn set_diameter(g: &Graph, s: &VertexSet) -> Result<u32> {
    let sub = crate::view::Subgraph::induced(g, s);
    diameter(sub.graph())
}

/// Eccentricity of `v`: `max_u dist(v, u)`.
///
/// # Errors
///
/// Returns [`GraphError::NotConnected`] if some vertex is unreachable.
pub fn eccentricity(g: &Graph, v: VertexId) -> Result<u32> {
    let d = bfs_distances(g, v);
    let mut best = 0;
    for &x in &d {
        if x == UNREACHABLE {
            return Err(GraphError::NotConnected);
        }
        best = best.max(x);
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        Graph::from_edges(n, (0..n as u32 - 1).map(|i| (i, i + 1))).unwrap()
    }

    #[test]
    fn bfs_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bfs_ignores_self_loops() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2), (0, 0)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn ball_growth() {
        let g = path(7);
        assert_eq!(ball(&g, 3, 0).len(), 1);
        assert_eq!(ball(&g, 3, 1).iter().collect::<Vec<_>>(), vec![2, 3, 4]);
        assert_eq!(ball(&g, 3, 2).len(), 5);
        assert_eq!(ball(&g, 3, 100).len(), 7);
    }

    #[test]
    fn ball_edge_counts() {
        let g = path(7);
        assert_eq!(ball_edge_count(&g, 3, 1), 2);
        assert_eq!(ball_edge_count(&g, 3, 2), 4);
    }

    #[test]
    fn components_of_disjoint_paths() {
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (4, 5)]).unwrap();
        let comps = connected_components(&g);
        assert_eq!(comps.len(), 3);
        let sizes: Vec<usize> = comps.iter().map(|c| c.len()).collect();
        assert_eq!(sizes, vec![3, 1, 2]);
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameter_of_path_and_cycle() {
        assert_eq!(diameter(&path(6)).unwrap(), 5);
        let c6 = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        assert_eq!(diameter(&c6).unwrap(), 3);
    }

    #[test]
    fn double_sweep_is_exact_on_trees() {
        let star = Graph::from_edges(5, [(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(diameter_double_sweep(&star).unwrap(), 2);
        assert_eq!(diameter_double_sweep(&path(9)).unwrap(), 8);
    }

    #[test]
    fn double_sweep_never_exceeds_diameter() {
        let g =
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5), (5, 3)]).unwrap();
        let exact = diameter(&g).unwrap();
        let sweep = diameter_double_sweep(&g).unwrap();
        assert!(sweep <= exact);
    }

    #[test]
    fn diameter_error_cases() {
        let empty = Graph::from_edges(0, []).unwrap();
        assert!(matches!(diameter(&empty), Err(GraphError::Empty { .. })));
        let disc = Graph::from_edges(3, [(0, 1)]).unwrap();
        assert_eq!(diameter(&disc), Err(GraphError::NotConnected));
        assert_eq!(diameter_double_sweep(&disc), Err(GraphError::NotConnected));
        assert_eq!(eccentricity(&disc, 0), Err(GraphError::NotConnected));
    }

    #[test]
    fn set_diameter_restricts_paths() {
        // Cycle C6: the set {0,1,2,3} has induced diameter 3 even though
        // dist_G(0,3) == 3 both ways; removing 4,5 forces the long way.
        let c6 = Graph::from_edges(6, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0)]).unwrap();
        let s = VertexSet::from_iter(6, [0u32, 1, 2, 3]);
        assert_eq!(set_diameter(&c6, &s).unwrap(), 3);
    }

    #[test]
    fn eccentricity_on_path() {
        let g = path(5);
        assert_eq!(eccentricity(&g, 2).unwrap(), 2);
        assert_eq!(eccentricity(&g, 0).unwrap(), 4);
    }

    #[test]
    fn singleton_graph_connected() {
        let g = Graph::from_edges(1, []).unwrap();
        assert!(is_connected(&g));
        assert_eq!(diameter(&g).unwrap(), 0);
    }
}
