//! Active-worklist ⇔ full-scan engine equivalence.
//!
//! The scheduler steps only vertices on its active worklist (previous
//! round's receivers plus vertices that did not vote to halt); the
//! pre-worklist behavior — scanning all `n` slots every round — is kept
//! behind the `CONGEST_ENGINE_FULL_SCAN` env var exactly so this suite
//! can pin the two **bit-for-bit**: same [`RunReport`] (rounds, messages,
//! bits, words, link peaks) and same per-vertex final program state, in
//! both [`ExecMode::Sequential`] and [`ExecMode::Parallel`], under a
//! forced 4-thread pool.
//!
//! The probe program is chosen to exercise every worklist transition:
//! vertices that halt immediately and only wake on mail, vertices that
//! stay awake for rounds without sending or receiving (the non-halted
//! self-push path), late wake-up bursts re-flooding a quiesced network,
//! and overlapping floods hitting one receiver from many senders in the
//! same round (the push-once dedup in `flag_mail`).

use congest::{Ctx, ExecMode, Network, RunReport, VertexProgram};
use graph::{gen, Graph, VertexId};

/// Flood-with-TTL plus scheduled late wake-ups.
struct Pulse {
    me: VertexId,
    /// Order- and schedule-independent digest of everything received.
    state: u64,
    /// Round at which this vertex spontaneously bursts (0 = never).
    wake_round: usize,
    fired: bool,
}

impl Pulse {
    fn new(me: VertexId) -> Pulse {
        Pulse {
            me,
            state: 0,
            // A sparse set of late talkers, staggered so the network
            // quiesces between bursts (empty worklist stretches).
            wake_round: if me % 29 == 3 {
                5 + (me as usize % 7) * 4
            } else {
                0
            },
            fired: false,
        }
    }
}

impl VertexProgram for Pulse {
    type Msg = u32;

    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if self.me % 13 == 0 {
            ctx.broadcast(3); // seed floods, ttl 3
        }
    }

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
        let mut max_ttl = 0;
        for &(from, ttl) in inbox {
            self.state = self
                .state
                .wrapping_mul(0x100000001B3)
                .wrapping_add((from as u64) << 8 | ttl as u64);
            max_ttl = max_ttl.max(ttl);
        }
        if max_ttl > 1 {
            ctx.broadcast(max_ttl - 1); // forward the strongest pulse
        }
        if !self.fired && self.wake_round != 0 && ctx.round() == self.wake_round {
            ctx.broadcast(2);
            self.fired = true;
        }
    }

    fn halted(&self) -> bool {
        // Late talkers stay awake (idle, sending nothing) until they
        // fire — the worklist must keep re-stepping them without mail.
        self.fired || self.wake_round == 0
    }
}

fn run(g: &Graph, mode: ExecMode) -> (RunReport, Vec<u64>) {
    let (report, programs) = Network::new(g)
        .with_exec_mode(mode)
        .run_collect(Pulse::new, 200)
        .expect("pulse is a valid CONGEST program");
    (report, programs.into_iter().map(|p| p.state).collect())
}

#[test]
fn worklist_matches_full_scan_bit_for_bit() {
    // Fix the pool size before the first rayon call (the shim caches it).
    std::env::set_var("RAYON_NUM_THREADS", "4");
    std::env::remove_var("CONGEST_ENGINE_FULL_SCAN");

    let graphs = vec![
        gen::gnp(400, 0.02, 11).unwrap(),
        gen::gnp(900, 0.004, 12).unwrap(),
        gen::cycle(257).unwrap(),
        gen::star(120).unwrap(),
        Graph::from_edges(50, [(0u32, 1u32)]).unwrap(), // mostly isolated
    ];

    for g in &graphs {
        let worklist_seq = run(g, ExecMode::Sequential);
        let worklist_par = run(g, ExecMode::Parallel);

        std::env::set_var("CONGEST_ENGINE_FULL_SCAN", "1");
        let full_seq = run(g, ExecMode::Sequential);
        let full_par = run(g, ExecMode::Parallel);
        std::env::remove_var("CONGEST_ENGINE_FULL_SCAN");

        assert!(
            worklist_seq.0.rounds > 6,
            "probe must outlive its seed burst (n = {})",
            g.n()
        );
        assert_eq!(worklist_seq, full_seq, "seq diverged (n = {})", g.n());
        assert_eq!(worklist_par, full_par, "par diverged (n = {})", g.n());
        assert_eq!(
            worklist_seq,
            worklist_par,
            "exec modes diverged (n = {})",
            g.n()
        );
    }
}
