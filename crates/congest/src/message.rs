//! Message payloads and their bit-size accounting.
//!
//! CONGEST allows `O(log n)` bits per edge per round. Every message type
//! reports its encoded size through [`Payload::encoded_bits`]; the network
//! checks it against the per-edge budget (a configurable multiple of
//! `⌈log₂ n⌉`).
//!
//! Floating-point payloads deserve a note: the paper's walk-mass messages
//! are real numbers, but the algorithms only need them to additive accuracy
//! `poly(1/n)` (the truncation threshold `ε_b` is the precision floor), so
//! an `O(log n)`-bit fixed-point encoding suffices. We transmit `f64` for
//! implementation convenience and charge it as one `O(log n)`-bit word,
//! matching the paper's accounting.

/// A message payload with a declared encoded size in bits.
///
/// Implemented for the primitive types used by the algorithms in this
/// repository. Sizes are the *model* sizes (see module docs), not Rust
/// memory sizes.
pub trait Payload: Clone {
    /// Size of this message in bits under the model's encoding.
    fn encoded_bits(&self) -> usize;
}

macro_rules! impl_payload_fixed {
    ($($ty:ty => $bits:expr),* $(,)?) => {
        $(impl Payload for $ty {
            fn encoded_bits(&self) -> usize { $bits }
        })*
    };
}

impl_payload_fixed! {
    u8 => 8,
    u16 => 16,
    u32 => 32,
    u64 => 64,
    i32 => 32,
    i64 => 64,
    usize => 64,
    bool => 1,
    // One O(log n)-bit fixed-point word (see module docs).
    f64 => 64,
}

impl Payload for () {
    fn encoded_bits(&self) -> usize {
        1
    }
}

impl<A: Payload, B: Payload> Payload for (A, B) {
    fn encoded_bits(&self) -> usize {
        self.0.encoded_bits() + self.1.encoded_bits()
    }
}

impl<A: Payload, B: Payload, C: Payload> Payload for (A, B, C) {
    fn encoded_bits(&self) -> usize {
        self.0.encoded_bits() + self.1.encoded_bits() + self.2.encoded_bits()
    }
}

impl<A: Payload, B: Payload, C: Payload, D: Payload> Payload for (A, B, C, D) {
    fn encoded_bits(&self) -> usize {
        self.0.encoded_bits()
            + self.1.encoded_bits()
            + self.2.encoded_bits()
            + self.3.encoded_bits()
    }
}

impl<T: Payload> Payload for Option<T> {
    fn encoded_bits(&self) -> usize {
        1 + self.as_ref().map_or(0, Payload::encoded_bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_sizes() {
        assert_eq!(5u32.encoded_bits(), 32);
        assert_eq!(true.encoded_bits(), 1);
        assert_eq!(().encoded_bits(), 1);
        assert_eq!(1.5f64.encoded_bits(), 64);
    }

    #[test]
    fn composite_sizes() {
        assert_eq!((1u32, 2u32).encoded_bits(), 64);
        assert_eq!((1u32, 2u32, 3u8).encoded_bits(), 72);
        assert_eq!((1u8, 2u8, 3u8, 4u8).encoded_bits(), 32);
        assert_eq!(Some(7u16).encoded_bits(), 17);
        assert_eq!(None::<u16>.encoded_bits(), 1);
    }
}
