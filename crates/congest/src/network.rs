//! The synchronous round engine for the CONGEST model: public API.
//!
//! The execution machinery lives in [`crate::engine`]; this module keeps
//! the user-facing surface — [`VertexProgram`], the per-vertex [`Ctx`],
//! and the [`Network`] runner.

use crate::engine::validate::SendSink;
use crate::engine::{scheduler, ExecMode};
use crate::{Payload, Result, RunReport};
use graph::{Graph, VertexId};

/// A per-vertex distributed program.
///
/// The engine drives all vertices in lock step:
///
/// 1. [`VertexProgram::init`] runs once for every vertex ("round 0") and
///    may send messages.
/// 2. Each subsequent round delivers the messages sent in the previous
///    step and invokes [`VertexProgram::round`] on every vertex that is
///    either not halted or has a non-empty inbox.
/// 3. The run stops when **every** vertex has halted and no messages are
///    in flight.
///
/// A halted vertex is woken up again if a message arrives — halting is a
/// vote, not a termination.
pub trait VertexProgram {
    /// Message type; its [`Payload::encoded_bits`] is charged against the
    /// per-edge bandwidth budget.
    type Msg: Payload;

    /// One-time initialization; may send messages via `ctx`.
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>);

    /// One synchronous round. `inbox` holds `(sender, message)` pairs
    /// sorted by sender id.
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(VertexId, Self::Msg)]);

    /// Whether this vertex currently votes to halt.
    fn halted(&self) -> bool;
}

/// Per-vertex view of the network available during a round.
///
/// Provides the local information CONGEST permits: own id, own neighbor
/// list, the round number, plus global constants (`n` and the bandwidth,
/// which are common knowledge in the model).
pub struct Ctx<'a, M> {
    me: VertexId,
    g: &'a Graph,
    round: usize,
    sink: SendSink<'a, M>,
}

impl<'a, M: Payload> Ctx<'a, M> {
    pub(crate) fn new(me: VertexId, g: &'a Graph, round: usize, sink: SendSink<'a, M>) -> Self {
        Ctx { me, g, round, sink }
    }

    /// This vertex's id.
    pub fn me(&self) -> VertexId {
        self.me
    }

    /// Number of vertices in the network (common knowledge in CONGEST).
    pub fn n(&self) -> usize {
        self.g.n()
    }

    /// Current round number (0 during `init`).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Degree of this vertex (self loops included).
    pub fn degree(&self) -> usize {
        self.g.degree(self.me)
    }

    /// Sorted neighbor list of this vertex.
    pub fn neighbors(&self) -> &'a [VertexId] {
        self.sink.neighbors()
    }

    /// Queues a message to neighbor `to` for delivery next round.
    ///
    /// Validity (adjacency, one message per neighbor per round, bandwidth)
    /// is checked as the message is queued; the first violation aborts the
    /// run with the corresponding [`crate::CongestError`] and silently
    /// drops this vertex's remaining sends for the round (exactly where
    /// the seed engine stopped dispatching).
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.sink.send(to, msg);
    }

    /// Sends `msg` to every neighbor (once per neighbor, even across
    /// parallel edges), without allocating.
    pub fn broadcast(&mut self, msg: M) {
        self.sink.send_to_all_except(&[], msg);
    }

    /// Sends `msg` to every neighbor **not** in `excluded` — the
    /// "forward to everyone who didn't just send to me" step of flooding
    /// algorithms, without the neighbor-list clone the seed needed.
    pub fn broadcast_except(&mut self, excluded: &[VertexId], msg: M) {
        self.sink.send_to_all_except(excluded, msg);
    }
}

impl<M> std::fmt::Debug for Ctx<'_, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx")
            .field("me", &self.me)
            .field("round", &self.round)
            .field("n", &self.g.n())
            .finish_non_exhaustive()
    }
}

/// A CONGEST network over a fixed communication graph.
///
/// See the [crate documentation](crate) for a complete example.
#[derive(Debug, Clone)]
pub struct Network<'g> {
    g: &'g Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    mode: ExecMode,
}

impl<'g> Network<'g> {
    /// A network over `g` with the default bandwidth budget of
    /// `max(128, 16·⌈log₂ n⌉)` bits per edge per round — a fixed constant
    /// number of `O(log n)`-bit words.
    pub fn new(g: &'g Graph) -> Self {
        let log_n = crate::packed::word_bits(g.n());
        Network {
            g,
            bandwidth_bits: (16 * log_n).max(128),
            word_bits: log_n,
            mode: ExecMode::Sequential,
        }
    }

    /// Overrides the per-edge-per-round bandwidth budget in bits.
    pub fn with_bandwidth_bits(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Selects how vertices are stepped within a round. Both modes give
    /// bit-identical results; see [`ExecMode`].
    pub fn with_exec_mode(mut self, mode: ExecMode) -> Self {
        self.mode = mode;
        self
    }

    /// The enforced per-edge-per-round budget in bits.
    pub fn bandwidth_bits(&self) -> usize {
        self.bandwidth_bits
    }

    /// Size of one model word in bits: `⌈log₂ n⌉`. Message word charges
    /// ([`crate::RunReport::words`]) are `⌈bits / word_bits⌉` per
    /// message.
    pub fn word_bits(&self) -> usize {
        self.word_bits
    }

    /// The configured execution mode.
    pub fn exec_mode(&self) -> ExecMode {
        self.mode
    }

    /// The communication graph.
    pub fn graph(&self) -> &Graph {
        self.g
    }

    /// Runs one program instance per vertex until global halt.
    ///
    /// `make` constructs the program for each vertex (it receives the
    /// vertex id, so programs can embed their identity or seed their local
    /// randomness from it).
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CongestError`] on any model violation or if the
    /// run exceeds `max_rounds`.
    pub fn run<P, F>(&self, make: F, max_rounds: usize) -> Result<RunReport>
    where
        P: VertexProgram + Send,
        P::Msg: Send + Sync,
        F: FnMut(VertexId) -> P,
    {
        self.run_collect(make, max_rounds).map(|(report, _)| report)
    }

    /// Like [`Network::run`] but also returns the final program states,
    /// indexed by vertex id.
    ///
    /// # Errors
    ///
    /// Returns a [`crate::CongestError`] on any model violation or if the
    /// run exceeds `max_rounds`.
    pub fn run_collect<P, F>(&self, make: F, max_rounds: usize) -> Result<(RunReport, Vec<P>)>
    where
        P: VertexProgram + Send,
        P::Msg: Send + Sync,
        F: FnMut(VertexId) -> P,
    {
        match self.mode {
            ExecMode::Sequential => scheduler::run_sequential(
                self.g,
                self.bandwidth_bits,
                self.word_bits,
                make,
                max_rounds,
            ),
            ExecMode::Parallel => scheduler::run_parallel(
                self.g,
                self.bandwidth_bits,
                self.word_bits,
                make,
                max_rounds,
            ),
        }
    }

    /// Like [`Network::run_collect`] but always sequential and without
    /// `Send` bounds: for programs holding non-`Send` state (`Rc`,
    /// thread-local caches). Ignores the configured [`ExecMode`].
    ///
    /// # Errors
    ///
    /// As for [`Network::run_collect`].
    pub fn run_collect_local<P, F>(&self, make: F, max_rounds: usize) -> Result<(RunReport, Vec<P>)>
    where
        P: VertexProgram,
        F: FnMut(VertexId) -> P,
    {
        scheduler::run_sequential(
            self.g,
            self.bandwidth_bits,
            self.word_bits,
            make,
            max_rounds,
        )
    }

    /// [`Network::run`] with [`ExecMode::Parallel`], regardless of the
    /// configured mode.
    ///
    /// # Errors
    ///
    /// As for [`Network::run`].
    pub fn run_parallel<P, F>(&self, make: F, max_rounds: usize) -> Result<RunReport>
    where
        P: VertexProgram + Send,
        P::Msg: Send + Sync,
        F: FnMut(VertexId) -> P,
    {
        self.run_collect_parallel(make, max_rounds)
            .map(|(report, _)| report)
    }

    /// [`Network::run_collect`] with [`ExecMode::Parallel`], regardless of
    /// the configured mode.
    ///
    /// # Errors
    ///
    /// As for [`Network::run_collect`].
    pub fn run_collect_parallel<P, F>(
        &self,
        make: F,
        max_rounds: usize,
    ) -> Result<(RunReport, Vec<P>)>
    where
        P: VertexProgram + Send,
        P::Msg: Send + Sync,
        F: FnMut(VertexId) -> P,
    {
        scheduler::run_parallel(
            self.g,
            self.bandwidth_bits,
            self.word_bits,
            make,
            max_rounds,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CongestError;
    use graph::gen;

    /// Echoes one message to the next higher neighbor id, `hops` times.
    struct Relay {
        budget: usize,
        done: bool,
    }

    impl VertexProgram for Relay {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, self.budget as u32);
                self.done = true;
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
            self.done = true;
            for &(_, hops) in inbox {
                if hops > 0 {
                    let me = ctx.me();
                    if let Some(&next) = ctx.neighbors().iter().find(|&&w| w > me) {
                        ctx.send(next, hops - 1);
                    }
                }
            }
        }
        fn halted(&self) -> bool {
            self.done
        }
    }

    #[test]
    fn relay_round_count_matches_hops() {
        let g = gen::path(10).unwrap();
        let report = Network::new(&g)
            .run(
                |_| Relay {
                    budget: 5,
                    done: false,
                },
                100,
            )
            .unwrap();
        // Message travels 0->1 (round 1) then 5 more hops.
        assert_eq!(report.rounds, 6);
        assert_eq!(report.messages, 6);
    }

    struct SendToStranger;
    impl VertexProgram for SendToStranger {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(3, 1); // not adjacent on a path
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(VertexId, u32)]) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn sending_to_non_neighbor_fails() {
        let g = gen::path(4).unwrap();
        let err = Network::new(&g).run(|_| SendToStranger, 10).unwrap_err();
        assert_eq!(err, CongestError::NotANeighbor { from: 0, to: 3 });
    }

    #[test]
    fn sending_to_non_neighbor_fails_in_parallel_mode() {
        let g = gen::path(4).unwrap();
        let err = Network::new(&g)
            .run_parallel(|_| SendToStranger, 10)
            .unwrap_err();
        assert_eq!(err, CongestError::NotANeighbor { from: 0, to: 3 });
    }

    struct DoubleSend;
    impl VertexProgram for DoubleSend {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == 0 {
                ctx.send(1, 1);
                ctx.send(1, 2);
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(VertexId, u32)]) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn duplicate_send_fails() {
        let g = gen::path(2).unwrap();
        let err = Network::new(&g).run(|_| DoubleSend, 10).unwrap_err();
        assert!(matches!(
            err,
            CongestError::DuplicateSend { from: 0, to: 1, .. }
        ));
    }

    #[test]
    fn duplicate_send_across_parallel_edges_fails() {
        // Two copies of edge {0,1}: still one message per neighbor.
        let g = graph::Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap();
        let err = Network::new(&g).run(|_| DoubleSend, 10).unwrap_err();
        assert!(matches!(
            err,
            CongestError::DuplicateSend { from: 0, to: 1, .. }
        ));
    }

    struct FatMessage;
    impl VertexProgram for FatMessage {
        type Msg = (u64, u64, u64, u64);
        fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            if ctx.me() == 0 {
                ctx.send(1, (0, 0, 0, 0)); // 256 bits
            }
        }
        fn round(&mut self, _: &mut Ctx<'_, Self::Msg>, _: &[(VertexId, Self::Msg)]) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn bandwidth_violation_fails() {
        let g = gen::path(2).unwrap();
        let err = Network::new(&g)
            .with_bandwidth_bits(128)
            .run(|_| FatMessage, 10)
            .unwrap_err();
        assert!(matches!(
            err,
            CongestError::BandwidthExceeded { bits: 256, .. }
        ));
    }

    struct NeverHalts;
    impl VertexProgram for NeverHalts {
        type Msg = u32;
        fn init(&mut self, _: &mut Ctx<'_, u32>) {}
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(VertexId, u32)]) {}
        fn halted(&self) -> bool {
            false
        }
    }

    #[test]
    fn round_limit_enforced() {
        let g = gen::path(2).unwrap();
        let err = Network::new(&g).run(|_| NeverHalts, 7).unwrap_err();
        assert_eq!(err, CongestError::RoundLimitExceeded { limit: 7 });
    }

    struct InstantHalt;
    impl VertexProgram for InstantHalt {
        type Msg = u32;
        fn init(&mut self, _: &mut Ctx<'_, u32>) {}
        fn round(&mut self, _: &mut Ctx<'_, u32>, _: &[(VertexId, u32)]) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn silent_program_takes_zero_rounds() {
        let g = gen::path(5).unwrap();
        let report = Network::new(&g).run(|_| InstantHalt, 10).unwrap();
        assert_eq!(report.rounds, 0);
        assert_eq!(report.messages, 0);
    }

    #[test]
    fn run_collect_returns_states() {
        let g = gen::path(3).unwrap();
        let (_, progs) = Network::new(&g).run_collect(|_| InstantHalt, 10).unwrap();
        assert_eq!(progs.len(), 3);
    }

    /// Every vertex learns the minimum id in its connected component by
    /// iterated min-flooding; checks a multi-round convergence pattern.
    struct MinFlood {
        best: u32,
        changed: bool,
    }

    impl VertexProgram for MinFlood {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            self.best = ctx.me();
            ctx.broadcast(self.best);
            self.changed = false;
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
            let incoming = inbox.iter().map(|&(_, b)| b).min();
            if let Some(b) = incoming {
                if b < self.best {
                    self.best = b;
                    ctx.broadcast(b);
                }
            }
        }
        fn halted(&self) -> bool {
            true // quiescence-driven: only woken by messages
        }
    }

    #[test]
    fn min_flooding_converges_in_eccentricity_rounds() {
        let g = gen::cycle(9).unwrap();
        let (report, progs) = Network::new(&g)
            .run_collect(
                |_| MinFlood {
                    best: u32::MAX,
                    changed: false,
                },
                100,
            )
            .unwrap();
        assert!(progs.iter().all(|p| p.best == 0));
        // Vertex 0's eccentricity on C9 is 4; one extra round of silence
        // is impossible because halting is quiescence-driven.
        assert!(report.rounds <= 5, "took {} rounds", report.rounds);
    }

    #[test]
    fn broadcast_on_parallel_edges_sends_once_per_neighbor() {
        let g = graph::Graph::from_edges(3, [(0, 1), (0, 1), (1, 2)]).unwrap();
        let (report, progs) = Network::new(&g)
            .run_collect(
                |_| MinFlood {
                    best: u32::MAX,
                    changed: false,
                },
                100,
            )
            .unwrap();
        assert!(progs.iter().all(|p| p.best == 0));
        // Init: 0 broadcasts 1 message (not 2), 1 broadcasts 2, 2 one.
        // Round 1: vertex 1 adopts 0, re-broadcasts (2 msgs); vertex 2
        // adopts 1 (1 msg). Round 2: vertex 2 adopts 0 (1 msg).
        assert_eq!(report.messages, 4 + 3 + 1);
    }

    #[test]
    fn exec_modes_agree_on_min_flooding() {
        let g = gen::gnp(80, 0.06, 12).unwrap();
        let seq = Network::new(&g)
            .run_collect(
                |_| MinFlood {
                    best: u32::MAX,
                    changed: false,
                },
                1000,
            )
            .unwrap();
        let par = Network::new(&g)
            .with_exec_mode(ExecMode::Parallel)
            .run_collect(
                |_| MinFlood {
                    best: u32::MAX,
                    changed: false,
                },
                1000,
            )
            .unwrap();
        assert_eq!(seq.0, par.0, "RunReports must be bit-identical");
        assert_eq!(
            seq.1.iter().map(|p| p.best).collect::<Vec<_>>(),
            par.1.iter().map(|p| p.best).collect::<Vec<_>>()
        );
    }
}
