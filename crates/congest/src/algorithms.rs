//! Reference distributed primitives: BFS, broadcast and convergecast.
//!
//! These serve three purposes: they validate the engine against the
//! centralized implementations in [`graph::traversal`], they are the
//! textbook `O(D)` building blocks the paper's implementation lemmas charge
//! for ("build a BFS tree", "broadcast", "bottom-up traversal"), and their
//! measured round counts calibrate the round ledger of the `expander`
//! crate.

use crate::network::{Ctx, Network, VertexProgram};
use crate::{Result, RunReport};
use graph::{Graph, VertexId};

/// Message tags for the tree algorithms.
const TAG_WAVE: u8 = 0;
const TAG_JOIN: u8 = 1;
const TAG_SUM: u8 = 2;
const TAG_JOINSUM: u8 = 3;
const TAG_DECLINE: u8 = 4;

/// Distributed single-source BFS.
///
/// Returns the run report and the computed distance of every vertex
/// (`u32::MAX` for unreachable vertices). Rounds ≈ eccentricity of `root`.
///
/// # Errors
///
/// Propagates engine errors (round limit, model violations).
///
/// # Example
///
/// ```
/// use congest::algorithms::distributed_bfs;
/// let g = graph::gen::path(6).unwrap();
/// let (report, dist) = distributed_bfs(&g, 0, 100).unwrap();
/// assert_eq!(dist, vec![0, 1, 2, 3, 4, 5]);
/// assert_eq!(report.rounds, 5);
/// ```
pub fn distributed_bfs(
    g: &Graph,
    root: VertexId,
    max_rounds: usize,
) -> Result<(RunReport, Vec<u32>)> {
    struct Bfs {
        root: VertexId,
        dist: Option<u32>,
    }
    impl VertexProgram for Bfs {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            if ctx.me() == self.root {
                self.dist = Some(0);
                ctx.broadcast(1);
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
            if self.dist.is_some() {
                return;
            }
            if let Some(&d) = inbox.iter().map(|(_, d)| d).min() {
                self.dist = Some(d);
                let senders: Vec<VertexId> = inbox.iter().map(|&(f, _)| f).collect();
                ctx.broadcast_except(&senders, d + 1);
            }
        }
        fn halted(&self) -> bool {
            true // quiescence-driven
        }
    }

    let (report, progs) = Network::new(g).run_collect(|_| Bfs { root, dist: None }, max_rounds)?;
    let dist = progs
        .into_iter()
        .map(|p| p.dist.unwrap_or(u32::MAX))
        .collect();
    Ok((report, dist))
}

/// Broadcast of a value from `root` to every reachable vertex (flooding).
///
/// Returns the run report and each vertex's received value (`None` where
/// unreachable).
///
/// # Errors
///
/// Propagates engine errors.
pub fn broadcast_value(
    g: &Graph,
    root: VertexId,
    value: u64,
    max_rounds: usize,
) -> Result<(RunReport, Vec<Option<u64>>)> {
    struct Flood {
        root: VertexId,
        value: u64,
        got: Option<u64>,
    }
    impl VertexProgram for Flood {
        type Msg = u64;
        fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
            if ctx.me() == self.root {
                self.got = Some(self.value);
                ctx.broadcast(self.value);
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(VertexId, u64)]) {
            if self.got.is_none() {
                if let Some(&(_, v)) = inbox.first() {
                    self.got = Some(v);
                    let senders: Vec<VertexId> = inbox.iter().map(|&(f, _)| f).collect();
                    ctx.broadcast_except(&senders, v);
                }
            }
        }
        fn halted(&self) -> bool {
            true
        }
    }

    let (report, progs) = Network::new(g).run_collect(
        |_| Flood {
            root,
            value,
            got: None,
        },
        max_rounds,
    )?;
    Ok((report, progs.into_iter().map(|p| p.got).collect()))
}

/// Convergecast sum: builds a BFS tree from `root` and aggregates
/// `Σ_v input(v)` bottom-up. The classic `O(D)` aggregation the paper's
/// implementation uses for computing volumes and cut sizes.
///
/// Returns the run report and the total received at the root.
///
/// # Errors
///
/// Propagates engine errors; the graph must be connected for the sum to
/// cover all vertices.
pub fn aggregate_sum<FIn>(
    g: &Graph,
    root: VertexId,
    input: FIn,
    max_rounds: usize,
) -> Result<(RunReport, u64)>
where
    FIn: Fn(VertexId) -> u64,
{
    // Protocol: the root starts a BFS WAVE. When a vertex first receives
    // waves (all arrive in the same round, from its lower BFS level), it
    // picks the smallest-id sender as parent and answers every wave sender:
    // JOIN/JOINSUM to the parent, DECLINE to the rest. It WAVEs all
    // remaining neighbors. A vertex keeps a `pending` set of neighbors that
    // might still contribute: same-level neighbors resolve by mutual WAVE
    // exchange, deeper neighbors by JOIN (sum comes later), JOINSUM (leaf
    // child: sum included) or DECLINE. When `pending` empties, the vertex
    // sends its accumulated SUM to its parent.
    #[derive(Clone)]
    struct Agg {
        root: VertexId,
        my_value: u64,
        parent: Option<VertexId>,
        pending: Vec<VertexId>,
        acc: u64,
        reported: bool,
        in_tree: bool,
    }

    impl Agg {
        fn try_report(&mut self, ctx: &mut Ctx<'_, (u8, u64)>) {
            if self.reported || !self.in_tree || !self.pending.is_empty() {
                return;
            }
            self.reported = true;
            if let Some(p) = self.parent {
                ctx.send(p, (TAG_SUM, self.acc));
            }
        }
    }

    impl VertexProgram for Agg {
        type Msg = (u8, u64);
        fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
            self.acc = self.my_value;
            if ctx.me() == self.root {
                self.in_tree = true;
                self.pending = ctx.neighbors().to_vec();
                ctx.broadcast((TAG_WAVE, 0));
                self.reported = self.pending.is_empty(); // degenerate root
            }
        }
        fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(VertexId, Self::Msg)]) {
            let mut wave_senders: Vec<VertexId> = Vec::new();
            for &(from, (tag, value)) in inbox {
                match tag {
                    TAG_WAVE => wave_senders.push(from),
                    TAG_JOIN => {
                        // `from` is a child; its SUM arrives later, so it
                        // simply stays in `pending`.
                    }
                    TAG_JOINSUM | TAG_SUM => {
                        self.acc += value;
                        self.pending.retain(|&w| w != from);
                    }
                    TAG_DECLINE => {
                        self.pending.retain(|&w| w != from);
                    }
                    _ => unreachable!("unknown tag"),
                }
            }
            if !self.in_tree && !wave_senders.is_empty() {
                self.in_tree = true;
                let parent = wave_senders[0];
                self.parent = Some(parent);
                let others: Vec<VertexId> = ctx
                    .neighbors()
                    .iter()
                    .copied()
                    .filter(|w| !wave_senders.contains(w))
                    .collect();
                if others.is_empty() {
                    // Leaf: join and report in one combined message.
                    self.reported = true;
                    ctx.send(parent, (TAG_JOINSUM, self.acc));
                } else {
                    ctx.send(parent, (TAG_JOIN, 0));
                }
                for &s in wave_senders.iter().filter(|&&s| s != parent) {
                    ctx.send(s, (TAG_DECLINE, 0));
                }
                ctx.broadcast_except(&wave_senders, (TAG_WAVE, 0));
                self.pending = others;
            } else if self.in_tree {
                // A wave from a same-level neighbor: it joined elsewhere.
                for from in wave_senders {
                    self.pending.retain(|&w| w != from);
                }
            }
            self.try_report(ctx);
        }
        fn halted(&self) -> bool {
            true
        }
    }

    let (report, progs) = Network::new(g).run_collect(
        |v| Agg {
            root,
            my_value: input(v),
            parent: None,
            pending: Vec::new(),
            acc: 0,
            reported: false,
            in_tree: false,
        },
        max_rounds,
    )?;
    Ok((report, progs[root as usize].acc))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::{gen, traversal};

    #[test]
    fn bfs_matches_centralized_on_random_graph() {
        let g = gen::gnp(60, 0.08, 4).unwrap();
        let (_, dist) = distributed_bfs(&g, 0, 500).unwrap();
        let want = traversal::bfs_distances(&g, 0);
        assert_eq!(dist, want);
    }

    #[test]
    fn bfs_rounds_equal_eccentricity() {
        let g = gen::grid(6, 7).unwrap();
        let (report, _) = distributed_bfs(&g, 0, 500).unwrap();
        let ecc = traversal::eccentricity(&g, 0).unwrap();
        assert_eq!(report.rounds as u32, ecc);
    }

    #[test]
    fn bfs_handles_disconnection() {
        let g = graph::Graph::from_edges(4, [(0, 1)]).unwrap();
        let (_, dist) = distributed_bfs(&g, 0, 100).unwrap();
        assert_eq!(dist, vec![0, 1, u32::MAX, u32::MAX]);
    }

    #[test]
    fn broadcast_reaches_component() {
        let g = gen::cycle(11).unwrap();
        let (report, got) = broadcast_value(&g, 3, 777, 100).unwrap();
        assert!(got.iter().all(|&x| x == Some(777)));
        // On odd cycles the two wavefronts cross at the antipode, costing
        // one extra (empty-send) round.
        let ecc = traversal::eccentricity(&g, 3).unwrap();
        assert!(report.rounds as u32 >= ecc && report.rounds as u32 <= ecc + 1);
    }

    #[test]
    fn aggregate_sum_counts_vertices() {
        for g in [
            gen::path(17).unwrap(),
            gen::cycle(10).unwrap(),
            gen::grid(4, 5).unwrap(),
            gen::gnp(40, 0.12, 9).unwrap(),
        ] {
            if !traversal::is_connected(&g) {
                continue;
            }
            let (_, total) = aggregate_sum(&g, 0, |_| 1, 10_000).unwrap();
            assert_eq!(total as usize, g.n(), "n = {}", g.n());
        }
    }

    #[test]
    fn aggregate_sum_computes_volume() {
        let g = gen::gnp(30, 0.2, 2).unwrap();
        assert!(traversal::is_connected(&g));
        let (_, total) = aggregate_sum(&g, 5, |v| g.degree(v) as u64, 10_000).unwrap();
        assert_eq!(total as usize, g.total_volume());
    }

    #[test]
    fn aggregate_rounds_scale_with_diameter() {
        let g = gen::path(40).unwrap();
        let (report, total) = aggregate_sum(&g, 0, |_| 1, 10_000).unwrap();
        assert_eq!(total, 40);
        // Wave down (39) + sums back up (39) plus small constant.
        assert!(
            report.rounds >= 78 && report.rounds <= 90,
            "rounds {}",
            report.rounds
        );
    }

    #[test]
    fn aggregate_on_singleton() {
        let g = graph::Graph::from_edges(1, []).unwrap();
        let (report, total) = aggregate_sum(&g, 0, |_| 42, 10).unwrap();
        assert_eq!(total, 42);
        assert_eq!(report.rounds, 0);
    }
}
