//! A deterministic synchronous simulator for the **CONGEST** model of
//! distributed computing (and its all-to-all variant,
//! **CONGESTED-CLIQUE**).
//!
//! The CONGEST model (paper §1): the network is an undirected graph
//! `G = (V, E)`; each vertex is a processor with a distinct `Θ(log n)`-bit
//! id; computation proceeds in synchronized rounds; per round each vertex
//! may send **one `O(log n)`-bit message over each incident edge**
//! (a distinct message per edge is allowed). Local computation and local
//! randomness are free and unlimited.
//!
//! Because the model is discrete and synchronous, simulation is *exact*:
//! the simulator enforces precisely the information locality and bandwidth
//! constraints of the model and reports the number of rounds, which is the
//! complexity measure all of the paper's theorems bound.
//!
//! # Example: flooding a token
//!
//! ```
//! use congest::{Network, VertexProgram, Ctx};
//!
//! #[derive(Default)]
//! struct Flood { seen: bool }
//!
//! impl VertexProgram for Flood {
//!     type Msg = u64;
//!     fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
//!         if ctx.me() == 0 {
//!             self.seen = true;
//!             ctx.broadcast(1);
//!         }
//!     }
//!     fn round(&mut self, ctx: &mut Ctx<'_, u64>, inbox: &[(graph::VertexId, u64)]) {
//!         if !self.seen && !inbox.is_empty() {
//!             self.seen = true;
//!             // Forward to everyone who did not just send to us.
//!             let senders: Vec<_> = inbox.iter().map(|&(f, _)| f).collect();
//!             ctx.broadcast_except(&senders, 1);
//!         }
//!     }
//!     fn halted(&self) -> bool { self.seen }
//! }
//!
//! let g = graph::gen::path(8).unwrap();
//! let report = congest::Network::new(&g).run(|_| Flood::default(), 100).unwrap();
//! assert_eq!(report.rounds, 7); // diameter of P8
//!
//! // The engine can also step vertices in parallel — bit-identical results:
//! let par = congest::Network::new(&g)
//!     .with_exec_mode(congest::ExecMode::Parallel)
//!     .run(|_| Flood::default(), 100)
//!     .unwrap();
//! assert_eq!(par, report);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod algorithms;
pub mod clique;
mod engine;
mod error;
mod message;
mod metrics;
mod network;
pub mod packed;

pub use engine::ExecMode;
pub use error::CongestError;
pub use message::Payload;
pub use metrics::{PhaseLedger, RunReport};
pub use network::{Ctx, Network, VertexProgram};
pub use packed::{IdStreamDecoder, IdStreamEncoder, PackedError, PackedIds};

/// Result alias for simulator operations.
pub type Result<T> = std::result::Result<T, CongestError>;
