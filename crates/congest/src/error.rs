//! Error types for the CONGEST simulator.

use std::error::Error;
use std::fmt;

/// Errors raised while running a distributed program on the simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum CongestError {
    /// A vertex tried to send to a non-neighbor (CONGEST only allows
    /// messages along incident edges).
    NotANeighbor {
        /// Sender vertex.
        from: u32,
        /// Intended (non-adjacent) recipient.
        to: u32,
    },
    /// A vertex sent two messages over the same edge in one round.
    DuplicateSend {
        /// Sender vertex.
        from: u32,
        /// Recipient.
        to: u32,
        /// Round in which the violation happened.
        round: usize,
    },
    /// A message exceeded the per-edge bandwidth budget.
    BandwidthExceeded {
        /// Sender vertex.
        from: u32,
        /// Size of the offending message in bits.
        bits: usize,
        /// The enforced budget in bits.
        budget: usize,
    },
    /// The program did not halt within the round limit.
    RoundLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// In the CONGESTED-CLIQUE, a vertex exceeded its per-round send or
    /// receive quota of `n − 1` messages.
    CliqueQuotaExceeded {
        /// The offending vertex.
        vertex: u32,
        /// Messages it tried to send or receive this round.
        count: usize,
        /// The quota.
        quota: usize,
    },
}

impl fmt::Display for CongestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CongestError::NotANeighbor { from, to } => {
                write!(f, "vertex {from} attempted to send to non-neighbor {to}")
            }
            CongestError::DuplicateSend { from, to, round } => write!(
                f,
                "vertex {from} sent twice over edge to {to} in round {round}"
            ),
            CongestError::BandwidthExceeded { from, bits, budget } => write!(
                f,
                "vertex {from} sent a {bits}-bit message exceeding the {budget}-bit budget"
            ),
            CongestError::RoundLimitExceeded { limit } => {
                write!(f, "program did not halt within {limit} rounds")
            }
            CongestError::CliqueQuotaExceeded {
                vertex,
                count,
                quota,
            } => write!(
                f,
                "clique vertex {vertex} moved {count} messages in one round (quota {quota})"
            ),
        }
    }
}

impl Error for CongestError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = CongestError::NotANeighbor { from: 1, to: 2 };
        assert!(e.to_string().contains("non-neighbor"));
        let e = CongestError::RoundLimitExceeded { limit: 10 };
        assert!(e.to_string().contains("10"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<CongestError>();
    }
}
