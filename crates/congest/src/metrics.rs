//! Run statistics: the quantities the paper's theorems bound.

/// Statistics from one simulated execution.
///
/// `rounds` is the headline complexity measure; the message/bit counters
/// support congestion analyses (e.g. the `w`-cap of ParallelNibble).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of synchronous rounds until every vertex halted.
    pub rounds: usize,
    /// Total messages delivered across the whole run.
    pub messages: usize,
    /// Total payload bits delivered across the whole run.
    pub bits: usize,
    /// Maximum number of bits carried by any single edge-direction in any
    /// single round (≤ the bandwidth budget by construction).
    pub max_link_bits_per_round: usize,
}

impl RunReport {
    /// Merges two reports as if the runs happened back to back.
    pub fn sequenced_with(&self, later: &RunReport) -> RunReport {
        RunReport {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            bits: self.bits + later.bits,
            max_link_bits_per_round: self
                .max_link_bits_per_round
                .max(later.max_link_bits_per_round),
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits (max link load {} bits/round)",
            self.rounds, self.messages, self.bits, self.max_link_bits_per_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencing_adds_rounds_and_takes_max_load() {
        let a = RunReport {
            rounds: 3,
            messages: 10,
            bits: 320,
            max_link_bits_per_round: 32,
        };
        let b = RunReport {
            rounds: 2,
            messages: 4,
            bits: 256,
            max_link_bits_per_round: 64,
        };
        let c = a.sequenced_with(&b);
        assert_eq!(c.rounds, 5);
        assert_eq!(c.messages, 14);
        assert_eq!(c.bits, 576);
        assert_eq!(c.max_link_bits_per_round, 64);
    }

    #[test]
    fn display_mentions_rounds() {
        let a = RunReport {
            rounds: 7,
            ..Default::default()
        };
        assert!(a.to_string().contains("7 rounds"));
    }
}
