//! Run statistics: the quantities the paper's theorems bound, plus
//! wall-clock attribution for the host-machine perf dashboard.

use std::time::Duration;

/// Statistics from one simulated execution.
///
/// `rounds` is the headline complexity measure; the message/bit counters
/// support congestion analyses (e.g. the `w`-cap of ParallelNibble).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunReport {
    /// Number of synchronous rounds until every vertex halted.
    pub rounds: usize,
    /// Total messages delivered across the whole run.
    pub messages: usize,
    /// Total payload bits delivered across the whole run.
    pub bits: usize,
    /// Total `⌈log₂ n⌉`-bit **words** delivered across the whole run:
    /// each message is charged `⌈bits / word_bits⌉` words (the unit the
    /// paper's bandwidth arguments count in — see DESIGN.md §10).
    pub words: usize,
    /// Maximum number of bits carried by any single edge-direction in any
    /// single round (≤ the bandwidth budget by construction).
    pub max_link_bits_per_round: usize,
}

impl RunReport {
    /// Merges two reports as if the runs happened back to back.
    pub fn sequenced_with(&self, later: &RunReport) -> RunReport {
        RunReport {
            rounds: self.rounds + later.rounds,
            messages: self.messages + later.messages,
            bits: self.bits + later.bits,
            words: self.words + later.words,
            max_link_bits_per_round: self
                .max_link_bits_per_round
                .max(later.max_link_bits_per_round),
        }
    }

    /// Merges two reports as if the runs happened **simultaneously on
    /// disjoint parts of the network** (e.g. per-cluster runs of the
    /// triangle pipeline): rounds are the max, traffic adds up.
    pub fn parallel_with(&self, other: &RunReport) -> RunReport {
        RunReport {
            rounds: self.rounds.max(other.rounds),
            messages: self.messages + other.messages,
            bits: self.bits + other.bits,
            words: self.words + other.words,
            max_link_bits_per_round: self
                .max_link_bits_per_round
                .max(other.max_link_bits_per_round),
        }
    }
}

/// Named-phase aggregation of [`RunReport`]s: the metrics hook composed
/// algorithms (the triangle pipeline above all) use to attribute engine
/// traffic to algorithm phases.
///
/// Phases are ordered by first use. Within a phase, sequential runs add
/// via [`RunReport::sequenced_with`]; a group of parallel runs (disjoint
/// clusters stepped simultaneously) folds via [`RunReport::parallel_with`]
/// before being sequenced into the phase.
///
/// # Example
///
/// ```
/// use congest::{PhaseLedger, RunReport};
///
/// let mut ledger = PhaseLedger::new();
/// ledger.record("decompose", RunReport { rounds: 10, ..Default::default() });
/// ledger.record_parallel("enumerate", [
///     RunReport { rounds: 4, messages: 7, ..Default::default() },
///     RunReport { rounds: 6, messages: 2, ..Default::default() },
/// ]);
/// assert_eq!(ledger.phase("enumerate").rounds, 6);
/// assert_eq!(ledger.phase("enumerate").messages, 9);
/// assert_eq!(ledger.total().rounds, 16);
/// ```
/// Simulated CONGEST traffic ([`RunReport`]) is the paper-facing measure;
/// the ledger additionally tracks **measured host wall-clock** per phase
/// (via [`PhaseLedger::record_wall`]) so the perf dashboard can attribute
/// real time to pipeline phases next to the round charges. Wall-clock is
/// machine-dependent and intentionally excluded from the determinism
/// contracts (reports compare equal on rounds/traffic, never on walls).
/// The ledger also carries named **host operation counters**
/// ([`PhaseLedger::record_ops`]): deterministic counts of the simulator's
/// own work (e.g. the DLP routing-accounting loop iterations), used by
/// complexity regression guards the same way exchange-round counts guard
/// the CONGEST side. Unlike wall-clock, ops are machine-independent and
/// safe to assert on.
#[derive(Debug, Clone, Default)]
pub struct PhaseLedger {
    phases: Vec<(String, RunReport)>,
    walls: Vec<(String, Duration)>,
    ops: Vec<(String, u64)>,
}

impl PhaseLedger {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sequences `report` into `phase` (created on first use).
    pub fn record(&mut self, phase: &str, report: RunReport) {
        match self.phases.iter_mut().find(|(name, _)| name == phase) {
            Some((_, agg)) => *agg = agg.sequenced_with(&report),
            None => self.phases.push((phase.to_string(), report)),
        }
    }

    /// Folds a group of simultaneous runs (max rounds, summed traffic)
    /// and sequences the result into `phase`.
    pub fn record_parallel<I>(&mut self, phase: &str, reports: I)
    where
        I: IntoIterator<Item = RunReport>,
    {
        let mut merged: Option<RunReport> = None;
        for r in reports {
            merged = Some(match merged {
                Some(m) => m.parallel_with(&r),
                None => r,
            });
        }
        if let Some(m) = merged {
            self.record(phase, m);
        }
    }

    /// The aggregate of one phase (default-zero if never recorded).
    pub fn phase(&self, name: &str) -> RunReport {
        self.phases
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| *r)
            .unwrap_or_default()
    }

    /// Iterates `(phase, aggregate)` in first-use order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, RunReport)> + '_ {
        self.phases.iter().map(|(n, r)| (n.as_str(), *r))
    }

    /// All phases sequenced together.
    pub fn total(&self) -> RunReport {
        self.phases
            .iter()
            .fold(RunReport::default(), |acc, (_, r)| acc.sequenced_with(r))
    }

    /// Adds measured host wall-clock to `phase` (created on first use;
    /// independent of the traffic entries — a phase may have either or
    /// both).
    pub fn record_wall(&mut self, phase: &str, wall: Duration) {
        match self.walls.iter_mut().find(|(name, _)| name == phase) {
            Some((_, agg)) => *agg += wall,
            None => self.walls.push((phase.to_string(), wall)),
        }
    }

    /// Accumulated wall-clock of one phase (zero if never recorded).
    pub fn wall(&self, name: &str) -> Duration {
        self.walls
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, d)| *d)
            .unwrap_or(Duration::ZERO)
    }

    /// Iterates `(phase, wall)` in first-use order.
    pub fn iter_walls(&self) -> impl Iterator<Item = (&str, Duration)> + '_ {
        self.walls.iter().map(|(n, d)| (n.as_str(), *d))
    }

    /// Total wall-clock across all phases.
    pub fn total_wall(&self) -> Duration {
        self.walls.iter().map(|(_, d)| *d).sum()
    }

    /// Adds `count` to the named operation counter (created on first
    /// use). Counters are independent of the traffic and wall entries.
    pub fn record_ops(&mut self, counter: &str, count: u64) {
        match self.ops.iter_mut().find(|(name, _)| name == counter) {
            Some((_, agg)) => *agg += count,
            None => self.ops.push((counter.to_string(), count)),
        }
    }

    /// Accumulated count of one operation counter (zero if never
    /// recorded).
    pub fn ops(&self, counter: &str) -> u64 {
        self.ops
            .iter()
            .find(|(n, _)| n == counter)
            .map(|&(_, c)| c)
            .unwrap_or(0)
    }

    /// Iterates `(counter, count)` in first-use order.
    pub fn iter_ops(&self) -> impl Iterator<Item = (&str, u64)> + '_ {
        self.ops.iter().map(|(n, c)| (n.as_str(), *c))
    }

    /// Sequences every phase of `other` into this ledger (phase-wise,
    /// wall-clock and operation counters included).
    pub fn absorb(&mut self, other: &PhaseLedger) {
        for (name, report) in other.iter() {
            self.record(name, report);
        }
        for (name, wall) in other.iter_walls() {
            self.record_wall(name, wall);
        }
        for (name, count) in other.iter_ops() {
            self.record_ops(name, count);
        }
    }
}

impl std::fmt::Display for RunReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} rounds, {} messages, {} bits / {} words (max link load {} bits/round)",
            self.rounds, self.messages, self.bits, self.words, self.max_link_bits_per_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequencing_adds_rounds_and_takes_max_load() {
        let a = RunReport {
            rounds: 3,
            messages: 10,
            bits: 320,
            words: 10,
            max_link_bits_per_round: 32,
        };
        let b = RunReport {
            rounds: 2,
            messages: 4,
            bits: 256,
            words: 8,
            max_link_bits_per_round: 64,
        };
        let c = a.sequenced_with(&b);
        assert_eq!(c.rounds, 5);
        assert_eq!(c.messages, 14);
        assert_eq!(c.bits, 576);
        assert_eq!(c.words, 18);
        assert_eq!(c.max_link_bits_per_round, 64);
    }

    #[test]
    fn parallel_merge_takes_max_rounds_and_sums_traffic() {
        let a = RunReport {
            rounds: 3,
            messages: 10,
            bits: 320,
            words: 10,
            max_link_bits_per_round: 32,
        };
        let b = RunReport {
            rounds: 9,
            messages: 4,
            bits: 256,
            words: 8,
            max_link_bits_per_round: 16,
        };
        let c = a.parallel_with(&b);
        assert_eq!(c.rounds, 9);
        assert_eq!(c.messages, 14);
        assert_eq!(c.bits, 576);
        assert_eq!(c.words, 18);
        assert_eq!(c.max_link_bits_per_round, 32);
    }

    #[test]
    fn phase_ledger_attributes_and_totals() {
        let mut l = PhaseLedger::new();
        l.record(
            "a",
            RunReport {
                rounds: 2,
                messages: 1,
                ..Default::default()
            },
        );
        l.record(
            "a",
            RunReport {
                rounds: 3,
                messages: 1,
                ..Default::default()
            },
        );
        l.record_parallel(
            "b",
            [
                RunReport {
                    rounds: 7,
                    messages: 5,
                    ..Default::default()
                },
                RunReport {
                    rounds: 4,
                    messages: 5,
                    ..Default::default()
                },
            ],
        );
        assert_eq!(l.phase("a").rounds, 5);
        assert_eq!(l.phase("b").rounds, 7);
        assert_eq!(l.phase("b").messages, 10);
        assert_eq!(l.phase("missing"), RunReport::default());
        assert_eq!(l.total().rounds, 12);
        assert_eq!(l.iter().count(), 2);

        let mut m = PhaseLedger::new();
        m.absorb(&l);
        m.absorb(&l);
        assert_eq!(m.phase("a").rounds, 10);
    }

    #[test]
    fn wall_clock_accumulates_and_absorbs() {
        let mut l = PhaseLedger::new();
        assert_eq!(l.wall("decompose"), Duration::ZERO);
        l.record_wall("decompose", Duration::from_millis(5));
        l.record_wall("decompose", Duration::from_millis(7));
        l.record_wall("enumerate", Duration::from_millis(2));
        assert_eq!(l.wall("decompose"), Duration::from_millis(12));
        assert_eq!(l.total_wall(), Duration::from_millis(14));
        assert_eq!(l.iter_walls().count(), 2);

        let mut m = PhaseLedger::new();
        m.absorb(&l);
        m.absorb(&l);
        assert_eq!(m.wall("enumerate"), Duration::from_millis(4));
        // Wall entries are independent of traffic entries.
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.phase("decompose"), RunReport::default());
    }

    #[test]
    fn ops_counters_accumulate_and_absorb() {
        let mut l = PhaseLedger::new();
        assert_eq!(l.ops("dlp_accounting"), 0);
        l.record_ops("dlp_accounting", 41);
        l.record_ops("dlp_accounting", 1);
        l.record_ops("other", 5);
        assert_eq!(l.ops("dlp_accounting"), 42);
        assert_eq!(l.iter_ops().count(), 2);

        let mut m = PhaseLedger::new();
        m.absorb(&l);
        m.absorb(&l);
        assert_eq!(m.ops("dlp_accounting"), 84);
        // Ops entries are independent of traffic and wall entries.
        assert_eq!(m.iter().count(), 0);
        assert_eq!(m.iter_walls().count(), 0);
    }

    #[test]
    fn empty_parallel_record_is_noop() {
        let mut l = PhaseLedger::new();
        l.record_parallel("x", std::iter::empty());
        assert_eq!(l.iter().count(), 0);
        assert_eq!(l.total(), RunReport::default());
    }

    #[test]
    fn display_mentions_rounds() {
        let a = RunReport {
            rounds: 7,
            ..Default::default()
        };
        assert!(a.to_string().contains("7 rounds"));
    }
}
