//! Arena-backed mailboxes for the round engine.
//!
//! The seed engine allocated `vec![Vec::new(); n]` inboxes **every
//! round** and sorted each inbox by sender. This module replaces that
//! with degree-offset flat arenas exploiting the model's structure: a
//! vertex sends at most one message per neighbor per round, so vertex
//! `u`'s outgoing traffic fits in a fixed arena with **one slot per
//! adjacency position**, and the slot for recipient `v` is `v`'s
//! lower-bound position in `u`'s sorted neighbor list.
//!
//! Delivery is *pull-based*: receiver `v` walks its own sorted neighbor
//! list and reads each neighbor's slot for `v` (precomputed in
//! [`RevIndex`]), which yields the inbox **already sorted by sender** —
//! no per-round allocation, no sort. Slot occupancy is tracked by a
//! round stamp instead of clearing, so an idle round costs nothing.
//!
//! Two arenas ([`MailboxPair`]) alternate writer/reader roles each round
//! (double buffering): round `r` writes arena `r % 2` while reading the
//! messages round `r - 1` left in arena `(r - 1) % 2`. Because a vertex
//! only ever *writes its own* arena segment and *reads its neighbors'*
//! segments from the other arena, rounds parallelize over vertices with
//! no write conflicts.

use graph::{Graph, VertexId};
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

/// Stamp value meaning "slot never written".
const NEVER: usize = usize::MAX;

/// One vertex's outgoing arena segment: a slot per adjacency position.
///
/// `stamp[i] == r` means the slot was written in round `r`; any other
/// value means the slot's message (if present) is stale. Initial stamps
/// are [`NEVER`], which no round index ever equals (the engine errors out
/// at `usize::MAX` rounds long before).
///
/// Slot storage is allocated **lazily** on the first [`OutBuf::put`]:
/// broadcast-dominated programs (the adjacency exchange's streaming
/// vertices) never unicast, so at the 10⁷-edge tier the eager
/// per-adjacency-position arenas would commit gigabytes that are never
/// written. An unallocated buffer reports every slot as unstamped, which
/// is exactly what an allocated-but-never-written buffer reports.
#[derive(Debug)]
pub(crate) struct OutBuf<M> {
    msgs: Box<[Option<M>]>,
    stamp: Box<[usize]>,
    /// Number of adjacency slots to materialize on first write.
    degree: usize,
}

impl<M> OutBuf<M> {
    fn new(degree: usize) -> Self {
        OutBuf {
            msgs: Vec::new().into_boxed_slice(),
            stamp: Vec::new().into_boxed_slice(),
            degree,
        }
    }

    /// Whether the slot was written in round `round`.
    #[inline]
    pub(crate) fn is_stamped(&self, slot: usize, round: usize) -> bool {
        self.stamp.get(slot) == Some(&round)
    }

    /// Stamps `slot` for `round` and stores `msg` in it, materializing
    /// the slot storage on first use.
    #[inline]
    pub(crate) fn put(&mut self, slot: usize, round: usize, msg: M) {
        if self.stamp.is_empty() {
            self.msgs = (0..self.degree).map(|_| None).collect();
            self.stamp = vec![NEVER; self.degree].into_boxed_slice();
        }
        self.stamp[slot] = round;
        self.msgs[slot] = Some(msg);
    }
}

impl<M: Clone> OutBuf<M> {
    /// Reads the message in `slot`, which the caller checked is stamped.
    #[inline]
    fn read(&self, slot: usize) -> M {
        self.msgs[slot]
            .clone()
            .expect("stamped slot holds a message")
    }
}

/// One sender's broadcast cell for one round: when a vertex sends the
/// *same* message to *every* neighbor (the dominant pattern of streaming
/// programs), the message is stored once here instead of once per
/// adjacency slot, and receivers read one flat, cache-friendly cell
/// instead of chasing into the sender's slot storage.
#[derive(Debug)]
pub(crate) struct BcastCell<M> {
    stamp: usize,
    msg: Option<M>,
}

impl<M> BcastCell<M> {
    fn new() -> Self {
        BcastCell {
            stamp: NEVER,
            msg: None,
        }
    }

    /// Whether this cell carries a broadcast for `round`.
    #[inline]
    pub(crate) fn is_stamped(&self, round: usize) -> bool {
        self.stamp == round
    }

    /// Stores a broadcast for `round`.
    #[inline]
    pub(crate) fn put(&mut self, round: usize, msg: M) {
        self.stamp = round;
        self.msg = Some(msg);
    }
}

/// Concurrent accumulator for the next round's active worklist.
///
/// The scheduler steps only vertices that can possibly act in a round:
/// last round's mail *receivers* plus last round's *non-halted* steppers
/// (see `scheduler`'s worklist invariant). Both kinds are pushed here
/// while a round runs — receivers exactly once each via the atomic swap
/// in [`MailReader::flag_mail`], self-pushes at most once per stepped
/// vertex — so the list never exceeds `2n` entries and the fixed buffer
/// never reallocates. Entries are unordered and may contain duplicates
/// (a non-halted vertex that also received mail); the drain sorts and
/// deduplicates.
///
/// Relaxed ordering suffices: slots are claimed by `fetch_add`, each
/// claimed index is written by exactly one thread, and the scheduler
/// only reads after the round's step pass has joined all threads.
pub(crate) struct ActiveSet {
    items: Box<[AtomicU32]>,
    len: AtomicUsize,
}

impl ActiveSet {
    fn new(capacity: usize) -> Self {
        ActiveSet {
            items: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            len: AtomicUsize::new(0),
        }
    }

    /// Appends `v` (caller guarantees the per-round push-once discipline
    /// that bounds total pushes by the buffer capacity).
    #[inline]
    pub(crate) fn push(&self, v: VertexId) {
        let i = self.len.fetch_add(1, Ordering::Relaxed);
        self.items[i].store(v, Ordering::Relaxed);
    }

    /// Drains the set into `out`, sorted ascending and deduplicated, and
    /// resets the set for the next round.
    ///
    /// Two regimes keep the drain linear in what the round actually did:
    /// a short list is sorted directly (`O(k log k)`), while a list that
    /// is a sizable fraction of the graph is scattered into `bitmap`
    /// (one bit per vertex, caller-provided scratch) and swept in id
    /// order (`O(n/64 + k)`) — never worse than the full-slot scan the
    /// worklist replaces, even on broadcast-heavy rounds where nearly
    /// every vertex receives mail.
    pub(crate) fn drain_sorted_into(&self, out: &mut Vec<VertexId>, bitmap: &mut [u64]) {
        let len = self.len.swap(0, Ordering::Relaxed);
        out.clear();
        let items = &self.items[..len];
        if len * 24 < bitmap.len() * 64 {
            out.extend(items.iter().map(|a| a.load(Ordering::Relaxed)));
            out.sort_unstable();
            out.dedup();
        } else {
            for a in items {
                let v = a.load(Ordering::Relaxed) as usize;
                bitmap[v / 64] |= 1u64 << (v % 64);
            }
            for (w, word) in bitmap.iter_mut().enumerate() {
                let mut bits = *word;
                *word = 0;
                while bits != 0 {
                    let b = bits.trailing_zeros();
                    out.push((w * 64) as VertexId + b);
                    bits &= bits - 1;
                }
            }
        }
    }

    /// Discards all pushes (the full-scan fallback never reads the list
    /// but must still keep it from growing past its capacity).
    pub(crate) fn discard(&self) {
        self.len.store(0, Ordering::Relaxed);
    }
}

/// Precomputed reverse-edge index.
///
/// For the `i`-th adjacency position of vertex `v` (neighbor `u`),
/// `slot_of_sender(v, i)` is the position of `v` in `u`'s sorted neighbor
/// list — i.e. the slot in `u`'s [`OutBuf`] holding a message addressed
/// to `v`. For parallel edges the lower-bound position is used, matching
/// the engine's one-message-per-neighbor rule (the duplicate-send check
/// collapses all copies of an edge onto one slot).
pub(crate) struct RevIndex {
    /// CSR offsets into `lb` (self loops excluded, like `Graph::neighbors`).
    offsets: Vec<usize>,
    lb: Vec<u32>,
}

impl RevIndex {
    pub(crate) fn build(g: &Graph) -> RevIndex {
        let n = g.n();
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        let mut acc = 0usize;
        for v in 0..n as VertexId {
            acc += g.neighbors(v).len();
            offsets.push(acc);
        }
        let mut lb = Vec::with_capacity(acc);
        for v in 0..n as VertexId {
            for &u in g.neighbors(v) {
                let pos = g.neighbors(u).partition_point(|&w| w < v);
                debug_assert_eq!(g.neighbors(u)[pos], v, "undirected adjacency is symmetric");
                lb.push(pos as u32);
            }
        }
        RevIndex { offsets, lb }
    }

    /// Sender-side slot for the `i`-th neighbor of `v`.
    #[inline]
    fn slot_of_sender(&self, v: VertexId, i: usize) -> usize {
        self.lb[self.offsets[v as usize] + i] as usize
    }
}

/// The engine's double-buffered mailbox state: two outgoing arenas plus
/// two generations of per-vertex has-mail round stamps.
///
/// The stamps let the scheduler skip halted, mail-less vertices without
/// scanning their neighborhoods: a sender in round `r` stores `r + 1`
/// into the recipient's stamp in generation `(r + 1) % 2`, and a vertex
/// has mail in round `r` iff its stamp in generation `r % 2` equals `r`.
/// Two generations keep the round being *read* separate from the round
/// being *written* (a same-round sender must not clobber the stamp its
/// recipient is about to consult), and stale stamps never match a later
/// round, so nothing is ever cleared. They are atomic only so the
/// parallel path can raise them from many vertices at once; sequential
/// execution pays a relaxed store, which is free on every relevant
/// platform. (Concurrent stores race only when several senders target
/// one recipient in the same round, and then they all store the same
/// value.)
pub(crate) struct Mailboxes<M> {
    arenas: [Vec<OutBuf<M>>; 2],
    mail: [Vec<AtomicUsize>; 2],
    /// Per-*sender* round stamps (same two-generation scheme as `mail`):
    /// `sent[r % 2][u] == r` iff `u` queued at least one message in round
    /// `r`. Receivers consult this one flat array before touching a
    /// sender's arena segment, so a gather over a mostly-idle
    /// neighborhood (the long tail of streaming programs, where only a
    /// few high-degree vertices are still talking) costs one predictable
    /// load per neighbor instead of two dependent loads into per-sender
    /// slot storage.
    sent: [Vec<AtomicUsize>; 2],
    /// Per-sender broadcast cells (two generations like the arenas).
    bcast: [Vec<BcastCell<M>>; 2],
    rev: RevIndex,
    /// Next-round worklist accumulator (see [`ActiveSet`]).
    active: ActiveSet,
}

/// Which arena a round writes: `r % 2`.
#[inline]
fn writer_of(round: usize) -> usize {
    round % 2
}

impl<M: Clone> Mailboxes<M> {
    pub(crate) fn new(g: &Graph) -> Self {
        let n = g.n();
        let arena = || {
            (0..n as VertexId)
                .map(|v| OutBuf::new(g.neighbors(v).len()))
                .collect::<Vec<_>>()
        };
        let stamps = || (0..n).map(|_| AtomicUsize::new(0)).collect::<Vec<_>>();
        Mailboxes {
            arenas: [arena(), arena()],
            // Round 0 delivers nothing, so the initial stamp 0 (meaning
            // "mail for round 0") is never consulted. The initial `sent`
            // stamp 0 makes every vertex look like a round-0 sender to
            // the round-1 gather — an unfiltered first round, after
            // which the slot stamps remain the ground truth.
            mail: [stamps(), stamps()],
            sent: [stamps(), stamps()],
            bcast: [
                (0..n).map(|_| BcastCell::new()).collect(),
                (0..n).map(|_| BcastCell::new()).collect(),
            ],
            rev: RevIndex::build(g),
            active: ActiveSet::new(2 * n),
        }
    }

    /// The worklist accumulated while the current round stepped (see
    /// [`ActiveSet::drain_sorted_into`]).
    pub(crate) fn drain_active_into(&self, out: &mut Vec<VertexId>, bitmap: &mut [u64]) {
        self.active.drain_sorted_into(out, bitmap);
    }

    /// Discards the accumulated worklist (full-scan fallback).
    pub(crate) fn discard_active(&self) {
        self.active.discard();
    }

    /// Test-only: pretend `v` sent something in `round`, so gathers are
    /// not short-circuited by the sent filter when a test wants to
    /// exercise the slot-stamp logic directly.
    #[cfg(test)]
    pub(crate) fn mark_sent_for_test(&self, v: VertexId, round: usize) {
        self.sent[round % 2][v as usize].store(round, Ordering::Relaxed);
    }

    /// Splits the state into the pieces round `round` needs: the writer
    /// arena (exclusive, one segment per vertex) and the shared
    /// [`MailReader`] bundling the reader arena, the mail stamps and the
    /// reverse index.
    pub(crate) fn split_for_round(
        &mut self,
        round: usize,
    ) -> (
        &mut Vec<OutBuf<M>>,
        &mut Vec<BcastCell<M>>,
        MailReader<'_, M>,
    ) {
        let [a, b] = &mut self.arenas;
        let [ba, bb] = &mut self.bcast;
        let (write, read, bcast_write, bcast_read) = if writer_of(round) == 0 {
            (a, &*b, ba, &*bb)
        } else {
            (b, &*a, bb, &*ba)
        };
        let mail_cur = &self.mail[round % 2][..];
        let mail_next = &self.mail[(round + 1) % 2][..];
        // Generations alternate by round parity, so the generation this
        // round *writes* is disjoint from the one it *reads* (which round
        // `round - 1` wrote): (round + 1) % 2 == (round - 1) % 2.
        let sent_write = &self.sent[round % 2][..];
        let sent_read = &self.sent[(round + 1) % 2][..];
        (
            write,
            bcast_write,
            MailReader {
                read,
                bcast_read,
                mail_cur,
                mail_next,
                sent_write,
                sent_read,
                rev: &self.rev,
                active: &self.active,
                round,
            },
        )
    }
}

/// The shared-state view each stepping vertex uses: pull delivery from
/// the previous round's arena and stamp next-round mail.
pub(crate) struct MailReader<'e, M> {
    read: &'e Vec<OutBuf<M>>,
    bcast_read: &'e [BcastCell<M>],
    mail_cur: &'e [AtomicUsize],
    mail_next: &'e [AtomicUsize],
    sent_write: &'e [AtomicUsize],
    sent_read: &'e [AtomicUsize],
    rev: &'e RevIndex,
    active: &'e ActiveSet,
    round: usize,
}

// Manual impls: the reader is a bundle of shared references, copyable
// regardless of whether `M` itself is.
impl<M> Clone for MailReader<'_, M> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<M> Copy for MailReader<'_, M> {}

impl<M: Clone> MailReader<'_, M> {
    /// Whether `v` was sent mail in the previous round.
    #[inline]
    pub(crate) fn has_mail(&self, v: VertexId) -> bool {
        self.mail_cur[v as usize].load(Ordering::Relaxed) == self.round
    }

    /// Stamps `to` as having mail in the next round and, exactly once
    /// per recipient per round, enrolls `to` in the next round's
    /// worklist.
    ///
    /// The atomic swap is the push-once gate: among all senders flagging
    /// `to` this round, exactly one observes a stamp other than
    /// `round + 1` (the generation's previous value is at most
    /// `round - 1`), so concurrent broadcasts cannot enroll a recipient
    /// twice and the worklist buffer's capacity bound holds.
    #[inline]
    pub(crate) fn flag_mail(&self, to: VertexId) {
        let next = self.round + 1;
        if self.mail_next[to as usize].swap(next, Ordering::Relaxed) != next {
            self.active.push(to);
        }
    }

    /// Enrolls `v` itself in the next round's worklist (the scheduler
    /// calls this for every stepped vertex that did not halt).
    #[inline]
    pub(crate) fn push_active(&self, v: VertexId) {
        self.active.push(v);
    }

    /// Stamps `from` as having sent something this round.
    #[inline]
    pub(crate) fn mark_sent(&self, from: VertexId) {
        self.sent_write[from as usize].store(self.round, Ordering::Relaxed);
    }

    /// Pulls `v`'s inbox for this round into `inbox`, sorted by sender.
    ///
    /// Walks `v`'s sorted neighbor list; for each distinct neighbor `u`,
    /// reads `u`'s slot for `v` in the previous round's arena. Parallel
    /// edges are skipped after the first copy (one slot per neighbor).
    pub(crate) fn gather(&self, g: &Graph, v: VertexId, inbox: &mut Vec<(VertexId, M)>) {
        debug_assert!(self.round > 0, "round 0 delivers no messages");
        let prev = self.round - 1;
        let neighbors = g.neighbors(v);
        for (i, &u) in neighbors.iter().enumerate() {
            if i > 0 && neighbors[i - 1] == u {
                continue;
            }
            // Cheap first-level filter: skip neighbors that sent nothing
            // at all last round before touching their arena segment.
            if self.sent_read[u as usize].load(Ordering::Relaxed) != prev {
                continue;
            }
            // Broadcast fast path: one flat cell read per sender.
            let cell = &self.bcast_read[u as usize];
            if cell.is_stamped(prev) {
                inbox.push((u, cell.msg.clone().expect("stamped cell holds a message")));
                continue;
            }
            let sender = &self.read[u as usize];
            let slot = self.rev.slot_of_sender(v, i);
            if sender.is_stamped(slot, prev) {
                inbox.push((u, sender.read(slot)));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graph::Graph;

    #[test]
    fn rev_index_points_back_to_sender_slots() {
        // 0-1, 0-2, 1-2 triangle plus pendant 3 on 1.
        let g = Graph::from_edges(4, [(0, 1), (0, 2), (1, 2), (1, 3)]).unwrap();
        let rev = RevIndex::build(&g);
        for v in 0..4u32 {
            for (i, &u) in g.neighbors(v).iter().enumerate() {
                let slot = rev.slot_of_sender(v, i);
                assert_eq!(g.neighbors(u)[slot], v, "u={u} slot={slot} v={v}");
            }
        }
    }

    #[test]
    fn rev_index_collapses_parallel_edges_to_lower_bound() {
        let g = Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap();
        let rev = RevIndex::build(&g);
        // Both copies of the edge map to slot 0 on the other side.
        assert_eq!(rev.slot_of_sender(0, 0), 0);
        assert_eq!(rev.slot_of_sender(0, 1), 0);
        assert_eq!(rev.slot_of_sender(1, 0), 0);
    }

    #[test]
    fn stamped_delivery_round_trip() {
        let g = Graph::from_edges(3, [(0, 1), (1, 2)]).unwrap();
        let mut boxes: Mailboxes<u32> = Mailboxes::new(&g);

        // Round 0: vertex 0 sends 41 to 1; vertex 2 sends 43 to 1.
        {
            let (write, _bcast, reader) = boxes.split_for_round(0);
            let slot = g.neighbors(0).partition_point(|&w| w < 1);
            write[0].put(slot, 0, 41);
            reader.flag_mail(1);
            let slot = g.neighbors(2).partition_point(|&w| w < 1);
            write[2].put(slot, 0, 43);
            reader.flag_mail(1);
        }

        // Round 1: vertex 1 has mail from 0 and 2, sorted by sender.
        let (_, _, reader) = boxes.split_for_round(1);
        assert!(reader.has_mail(1));
        assert!(!reader.has_mail(0) && !reader.has_mail(2));
        let mut inbox = Vec::new();
        reader.gather(&g, 1, &mut inbox);
        assert_eq!(inbox, vec![(0, 41), (2, 43)]);

        // Vertices 0 and 2 got nothing.
        inbox.clear();
        reader.gather(&g, 0, &mut inbox);
        assert!(inbox.is_empty());
    }

    #[test]
    fn stale_stamps_from_two_rounds_ago_are_ignored() {
        let g = Graph::from_edges(2, [(0, 1)]).unwrap();
        let mut boxes: Mailboxes<u32> = Mailboxes::new(&g);
        // Round 0 writes arena 0.
        boxes.split_for_round(0).0[0].put(0, 0, 7);
        // Round 2 also writes arena 0 but does not re-send this message;
        // mark the sender active in round 2 so the gather actually
        // consults the slot stamp — it must not resurrect the round-0
        // message.
        boxes.mark_sent_for_test(0, 2);
        let (_, _, reader) = boxes.split_for_round(3);
        let mut inbox = Vec::new();
        reader.gather(&g, 1, &mut inbox);
        assert!(inbox.is_empty(), "stale stamp leaked: {inbox:?}");
    }
}
