//! The arena-backed round engine behind [`crate::Network`].
//!
//! Split by concern:
//!
//! * [`mailbox`] — double-buffered, degree-offset flat arenas and the
//!   pull-based, sorted-by-construction message delivery;
//! * [`validate`] — `O(log deg)` send validation (adjacency by binary
//!   search, duplicate sends by round stamps, bandwidth accounting);
//! * [`scheduler`] — the lock-step round loop, halt detection and the
//!   associative report reduction shared by both execution modes.
//!
//! See `DESIGN.md` §4 for the architecture rationale and §3 for why
//! lock-step fidelity pins the exact semantics both modes implement.

pub(crate) mod mailbox;
pub(crate) mod scheduler;
pub(crate) mod validate;

/// How [`crate::Network`] steps vertices within a round.
///
/// Both modes are **bit-for-bit equivalent**: identical
/// [`crate::RunReport`]s, final program states, and errors. A round's
/// per-vertex work reads only the previous round's messages and writes
/// only vertex-local state, so the engine runs the same per-vertex
/// function either in a plain loop or chunked across rayon workers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// One vertex at a time, in ascending id order. The default.
    #[default]
    Sequential,
    /// Vertices stepped in parallel over contiguous chunks.
    Parallel,
}
