//! Send-side validation for the round engine.
//!
//! The seed validated an entire outbox after the fact: adjacency with a
//! linear `neighbors(from).contains(&to)` scan (`O(deg)`) and duplicate
//! sends with `sent_to.contains(&to)` (`O(out²)` per vertex per round).
//! Here every [`SendSink::send`] validates eagerly in `O(log deg)`:
//!
//! * **adjacency** — binary search on the sender's sorted neighbor list;
//! * **duplicate send** — the resolved slot's round stamp: a slot already
//!   stamped for this round means a second message to the same neighbor;
//! * **bandwidth** — `Payload::encoded_bits` against the budget.
//!
//! Violations are recorded in [`SendStats::error`] (first one wins,
//! subsequent sends become no-ops) and surfaced by the scheduler as the
//! run's error, picking the smallest offending vertex id so sequential
//! and parallel execution report the identical [`CongestError`].

use crate::engine::mailbox::{BcastCell, MailReader, OutBuf};
use crate::{CongestError, Payload};
use graph::VertexId;

/// Per-vertex, per-round send accounting.
#[derive(Debug, Default, Clone)]
pub(crate) struct SendStats {
    /// Messages successfully queued this round.
    pub(crate) sent: usize,
    /// Total payload bits queued this round.
    pub(crate) bits: usize,
    /// Total `⌈log₂ n⌉`-bit words queued this round: each message is
    /// charged `⌈bits / word_bits⌉` words, the unit the model's
    /// bandwidth arguments count in.
    pub(crate) words: usize,
    /// Largest single message queued this round, in bits.
    pub(crate) max_bits: usize,
    /// First model violation by this vertex this round, if any.
    pub(crate) error: Option<CongestError>,
}

impl SendStats {
    pub(crate) fn reset(&mut self) {
        *self = SendStats::default();
    }
}

/// The validated write-end a vertex sends through during one round.
///
/// Owns exclusive access to the vertex's writer arena segment plus the
/// shared mail flags; everything [`crate::Ctx`] exposes funnels here.
pub(crate) struct SendSink<'a, M> {
    me: VertexId,
    /// `me`'s sorted neighbor list (slot index space of `out`).
    neighbors: &'a [VertexId],
    out: &'a mut OutBuf<M>,
    /// `me`'s broadcast cell for this round (see [`BcastCell`]).
    cell: &'a mut BcastCell<M>,
    mail: MailReader<'a, M>,
    stats: &'a mut SendStats,
    round: usize,
    bandwidth_bits: usize,
    /// Size of one model word in bits (`⌈log₂ n⌉`), for the per-message
    /// word charge.
    word_bits: usize,
}

impl<'a, M: Payload> SendSink<'a, M> {
    #[allow(clippy::too_many_arguments)] // the sink bundles one vertex's full write context
    pub(crate) fn new(
        me: VertexId,
        neighbors: &'a [VertexId],
        out: &'a mut OutBuf<M>,
        cell: &'a mut BcastCell<M>,
        mail: MailReader<'a, M>,
        stats: &'a mut SendStats,
        round: usize,
        bandwidth_bits: usize,
        word_bits: usize,
    ) -> Self {
        SendSink {
            me,
            neighbors,
            out,
            cell,
            mail,
            stats,
            round,
            bandwidth_bits,
            word_bits: word_bits.max(1),
        }
    }

    /// Validates and queues one message to `to`.
    ///
    /// After the first violation the sink goes dead for the round,
    /// mirroring the seed engine, which stopped dispatching a vertex's
    /// outbox at its first invalid message.
    pub(crate) fn send(&mut self, to: VertexId, msg: M) {
        if self.stats.error.is_some() {
            return;
        }
        // Adjacency by binary search; parallel edges collapse onto the
        // lower-bound slot, enforcing one message per *neighbor* (not per
        // edge copy) exactly like the seed's `sent_to` bookkeeping.
        let slot = self.neighbors.partition_point(|&w| w < to);
        if self.neighbors.get(slot) != Some(&to) {
            self.stats.error = Some(CongestError::NotANeighbor { from: self.me, to });
            return;
        }
        self.send_at(slot, to, msg);
    }

    /// [`SendSink::send`] with the slot already resolved — the broadcast
    /// loop iterates the neighbor list by index, so re-deriving the slot
    /// by binary search per message would be pure overhead.
    fn send_at(&mut self, slot: usize, to: VertexId, msg: M) {
        if self.stats.error.is_some() {
            return;
        }
        // A broadcast this round already reached every neighbor, so any
        // further send is a duplicate.
        if self.cell.is_stamped(self.round) {
            self.stats.error = Some(CongestError::DuplicateSend {
                from: self.me,
                to,
                round: self.round,
            });
            return;
        }
        if self.out.is_stamped(slot, self.round) {
            self.stats.error = Some(CongestError::DuplicateSend {
                from: self.me,
                to,
                round: self.round,
            });
            return;
        }
        let bits = msg.encoded_bits();
        if bits > self.bandwidth_bits {
            self.stats.error = Some(CongestError::BandwidthExceeded {
                from: self.me,
                bits,
                budget: self.bandwidth_bits,
            });
            return;
        }
        self.out.put(slot, self.round, msg);
        self.mail.flag_mail(to);
        if self.stats.sent == 0 {
            self.mail.mark_sent(self.me);
        }
        self.stats.sent += 1;
        self.stats.bits += bits;
        self.stats.words += bits.div_ceil(self.word_bits);
        self.stats.max_bits = self.stats.max_bits.max(bits);
    }

    /// Sends `msg` to every distinct neighbor not listed in `excluded`.
    ///
    /// Exclusion lists are usually inbox sender lists, which arrive
    /// sorted; those are handled with a linear merge against the sorted
    /// neighbor list (`O(deg + |excluded|)`). Unsorted lists fall back
    /// to a per-neighbor scan.
    pub(crate) fn send_to_all_except(&mut self, excluded: &[VertexId], msg: M) {
        // Broadcast fast path: nothing excluded and nothing sent yet this
        // round — store the message once in the broadcast cell instead of
        // once per adjacency slot. Identical observable behavior: the
        // same recipients get the same message, the same stats accrue,
        // and any later send this round raises the same DuplicateSend the
        // per-slot stamps would have raised.
        if excluded.is_empty()
            && self.stats.error.is_none()
            && self.stats.sent == 0
            && !self.cell.is_stamped(self.round)
        {
            if self.neighbors.is_empty() {
                return; // no neighbors: a broadcast sends (and checks) nothing
            }
            let bits = msg.encoded_bits();
            if bits > self.bandwidth_bits {
                self.stats.error = Some(CongestError::BandwidthExceeded {
                    from: self.me,
                    bits,
                    budget: self.bandwidth_bits,
                });
                return;
            }
            let mut distinct = 0usize;
            for i in 0..self.neighbors.len() {
                let w = self.neighbors[i];
                if i > 0 && self.neighbors[i - 1] == w {
                    continue; // parallel edge: one message per neighbor
                }
                distinct += 1;
                self.mail.flag_mail(w);
            }
            debug_assert!(distinct > 0, "non-empty neighbor list");
            self.cell.put(self.round, msg);
            self.mail.mark_sent(self.me);
            self.stats.sent += distinct;
            self.stats.bits += bits * distinct;
            self.stats.words += bits.div_ceil(self.word_bits) * distinct;
            self.stats.max_bits = self.stats.max_bits.max(bits);
            return;
        }
        let sorted = excluded.windows(2).all(|w| w[0] <= w[1]);
        let mut j = 0usize;
        for i in 0..self.neighbors.len() {
            let w = self.neighbors[i];
            if i > 0 && self.neighbors[i - 1] == w {
                continue; // parallel edge: one message per neighbor
            }
            let skip = if sorted {
                while j < excluded.len() && excluded[j] < w {
                    j += 1;
                }
                excluded.get(j) == Some(&w)
            } else {
                excluded.contains(&w)
            };
            if !skip {
                // `i` is the first copy's index == the lower-bound slot.
                self.send_at(i, w, msg.clone());
            }
        }
    }

    /// The sender's neighbor list (what `Ctx::neighbors` exposes).
    pub(crate) fn neighbors(&self) -> &'a [VertexId] {
        self.neighbors
    }
}
