//! The round loop: lock-step scheduling, halt detection and report
//! reduction, shared verbatim by the sequential and parallel paths.
//!
//! Each round has two logical phases fused into one pass over vertices:
//! pull-deliver the previous round's messages ([`super::mailbox`]), then
//! step the vertex program, validating sends eagerly
//! ([`super::validate`]). A vertex only ever mutates its own state and
//! its own writer arena segment while reading neighbors' segments from
//! the immutable reader arena, so the pass is embarrassingly parallel
//! over vertices — [`run_parallel`] runs the *same* per-vertex function
//! ([`step_vertex`]) under `rayon`, chunked over contiguous vertex
//! ranges, while [`run_sequential`] drives it in a plain loop (and
//! therefore needs no `Send` bounds on the programs).
//!
//! Determinism: per-vertex results do not depend on visit order, the
//! inbox is gathered in sorted-sender order by construction, and the
//! per-round reduction (message/bit sums, max link bits, min-vertex
//! error) is associative and commutative — sequential and parallel
//! execution therefore produce bit-identical [`RunReport`]s, final
//! program states, and errors. `tests/engine_determinism.rs` proves this
//! property over randomized graphs and programs.

use crate::engine::mailbox::{MailReader, Mailboxes, OutBuf};
use crate::engine::validate::SendStats;
use crate::network::{Ctx, VertexProgram};
use crate::{CongestError, Result, RunReport};
use graph::{Graph, VertexId};
use rayon::prelude::*;

/// Per-vertex engine state: the program plus reusable scratch.
pub(crate) struct Slot<P: VertexProgram> {
    program: P,
    /// Reused inbox buffer (cleared, not reallocated, each round).
    inbox: Vec<(VertexId, P::Msg)>,
    stats: SendStats,
    halted: bool,
}

/// Runs the engine stepping vertices one at a time, in ascending id
/// order. No `Send` bounds: programs may hold thread-local state.
pub(crate) fn run_sequential<P, F>(
    g: &Graph,
    bandwidth_bits: usize,
    make: F,
    max_rounds: usize,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram,
    F: FnMut(VertexId) -> P,
{
    run_impl(g, make, max_rounds, |slots, boxes, round| {
        let (write, reader) = boxes.split_for_round(round);
        slots
            .iter_mut()
            .zip(write.iter_mut())
            .enumerate()
            .for_each(|(v, (slot, out))| {
                step_vertex(g, bandwidth_bits, round, v as VertexId, slot, out, reader)
            });
    })
}

/// Runs the engine stepping vertices in parallel over contiguous
/// chunks. Bit-identical to [`run_sequential`]; see the module docs.
pub(crate) fn run_parallel<P, F>(
    g: &Graph,
    bandwidth_bits: usize,
    make: F,
    max_rounds: usize,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram + Send,
    P::Msg: Send + Sync,
    F: FnMut(VertexId) -> P,
{
    run_impl(g, make, max_rounds, |slots, boxes, round| {
        let (write, reader) = boxes.split_for_round(round);
        slots
            .par_iter_mut()
            .zip(write.par_iter_mut())
            .enumerate()
            .for_each(|(v, (slot, out))| {
                step_vertex(g, bandwidth_bits, round, v as VertexId, slot, out, reader)
            });
    })
}

/// The shared round loop; `step_all` executes one full round over all
/// vertices (this is the only thing the two modes do differently).
fn run_impl<P, F, S>(
    g: &Graph,
    mut make: F,
    max_rounds: usize,
    mut step_all: S,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram,
    F: FnMut(VertexId) -> P,
    S: FnMut(&mut [Slot<P>], &mut Mailboxes<P::Msg>, usize),
{
    let n = g.n();
    let mut slots: Vec<Slot<P>> = (0..n as VertexId)
        .map(|v| Slot {
            program: make(v),
            inbox: Vec::new(),
            stats: SendStats::default(),
            halted: false,
        })
        .collect();
    let mut boxes: Mailboxes<P::Msg> = Mailboxes::new(g);
    let mut report = RunReport::default();

    // Round 0: init every vertex.
    step_all(&mut slots, &mut boxes, 0);
    let (mut in_flight, mut all_halted) = reduce(&slots, &mut report)?;

    let mut round = 0usize;
    loop {
        if all_halted && in_flight == 0 {
            break;
        }
        if round >= max_rounds {
            return Err(CongestError::RoundLimitExceeded { limit: max_rounds });
        }
        round += 1;
        step_all(&mut slots, &mut boxes, round);
        (in_flight, all_halted) = reduce(&slots, &mut report)?;
    }
    report.rounds = round;
    Ok((report, slots.into_iter().map(|s| s.program).collect()))
}

/// Delivers `v`'s inbox and steps its program; the one function both
/// execution modes run, so their behavior cannot diverge.
fn step_vertex<P: VertexProgram>(
    g: &Graph,
    bandwidth_bits: usize,
    round: usize,
    v: VertexId,
    slot: &mut Slot<P>,
    out: &mut OutBuf<P::Msg>,
    reader: MailReader<'_, P::Msg>,
) {
    slot.stats.reset();
    slot.inbox.clear();
    if round > 0 && reader.has_mail(v) {
        reader.gather(g, v, &mut slot.inbox);
    }
    if round > 0 && slot.inbox.is_empty() && slot.program.halted() {
        // Halted and silent: skip the program, stay halted.
        slot.halted = true;
        return;
    }
    let sink = crate::engine::validate::SendSink::new(
        v,
        g.neighbors(v),
        out,
        reader,
        &mut slot.stats,
        round,
        bandwidth_bits,
    );
    let mut ctx = Ctx::new(v, g, round, sink);
    if round == 0 {
        slot.program.init(&mut ctx);
    } else {
        slot.program.round(&mut ctx, &slot.inbox);
    }
    slot.halted = slot.program.halted();
}

/// Folds the per-vertex round results into the run report and the halt
/// decision. Sums and maxes are associative; the error reduction picks
/// the smallest vertex id (the order the seed engine visited vertices),
/// so both execution modes surface the identical error.
fn reduce<P: VertexProgram>(slots: &[Slot<P>], report: &mut RunReport) -> Result<(usize, bool)> {
    let mut in_flight = 0usize;
    let mut all_halted = true;
    for slot in slots {
        if let Some(err) = &slot.stats.error {
            return Err(err.clone());
        }
        in_flight += slot.stats.sent;
        all_halted &= slot.halted;
        report.messages += slot.stats.sent;
        report.bits += slot.stats.bits;
        report.max_link_bits_per_round = report.max_link_bits_per_round.max(slot.stats.max_bits);
    }
    Ok((in_flight, all_halted))
}
