//! The round loop: lock-step scheduling, halt detection and report
//! reduction, shared verbatim by the sequential and parallel paths.
//!
//! Each round has two logical phases fused into one pass over vertices:
//! pull-deliver the previous round's messages ([`super::mailbox`]), then
//! step the vertex program, validating sends eagerly
//! ([`super::validate`]). A vertex only ever mutates its own state and
//! its own writer arena segment while reading neighbors' segments from
//! the immutable reader arena, so the pass is embarrassingly parallel
//! over vertices — [`run_parallel`] runs the *same* per-vertex function
//! ([`step_vertex`]) under `rayon`, chunked over contiguous vertex
//! ranges, while [`run_sequential`] drives it in a plain loop (and
//! therefore needs no `Send` bounds on the programs).
//!
//! **Active worklist.** Rounds step a worklist instead of scanning all
//! `n` slots. The invariant: a vertex can act in round `r > 0` only if
//! it is not halted (it will be stepped regardless of mail) or it
//! received mail in round `r - 1` (mail un-halts it). Round `r - 1`
//! therefore seeds round `r`'s list exactly: every `flag_mail` enrolls
//! its recipient once (atomic swap gate in the mailbox), and every
//! stepped vertex that ends the round not halted enrolls itself. Round 0
//! steps all vertices (`init` runs everywhere), establishing the base
//! case. The list is drained sorted-ascending and deduplicated, so the
//! sequential path visits vertices in index order and the parallel path
//! splits the per-vertex state at chunk id boundaries. A vertex outside
//! the list is halted with no mail — precisely the set the previous
//! full-scan engine skipped via its idle fast path — so the stepped set,
//! and with it every per-vertex effect and the [`RoundAgg`] reduction,
//! is identical to a full scan's. Setting `CONGEST_ENGINE_FULL_SCAN=1`
//! restores the scan (every round steps `0..n` with the idle fast-path
//! check); `tests/worklist_equivalence.rs` pins the two modes to
//! bit-identical results.
//!
//! Two further scale provisions keep long, mostly-idle runs cheap (the
//! measured decomposition's giant expander cluster streams for
//! `Θ(max deg)` rounds during which almost every vertex is halted and
//! silent):
//!
//! * the halt flags live in a compact side vector, so skipping a halted,
//!   mail-less vertex reads two warm words and never touches its
//!   [`Slot`] (whose program state is hundreds of bytes);
//! * round statistics fold into a [`RoundAgg`] *during* the step pass —
//!   only vertices that actually stepped contribute — instead of a
//!   second full sweep over all per-vertex stats per round.
//!
//! Determinism: per-vertex results do not depend on visit order, the
//! inbox is gathered in sorted-sender order by construction, and the
//! [`RoundAgg`] reduction (message/bit sums, max link bits, min-vertex
//! error) is associative and commutative over integers — sequential and
//! parallel execution therefore produce bit-identical [`RunReport`]s,
//! final program states, and errors. `tests/engine_determinism.rs`
//! proves this property over randomized graphs and programs.

use crate::engine::mailbox::{BcastCell, MailReader, Mailboxes, OutBuf};
use crate::engine::validate::SendStats;
use crate::network::{Ctx, VertexProgram};
use crate::{CongestError, Result, RunReport};
use graph::{Graph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-vertex engine state: the program plus reusable scratch.
pub(crate) struct Slot<P: VertexProgram> {
    program: P,
    /// Reused inbox buffer (cleared, not reallocated, each round).
    inbox: Vec<(VertexId, P::Msg)>,
    stats: SendStats,
}

/// One round's reduction, filled in by the stepping pass itself. All
/// fields are sums/maxes/mins of per-vertex integers, so the result is
/// independent of stepping order and of how vertices are chunked over
/// threads. Vertices skipped by the idle fast path contribute exactly
/// nothing (they are halted and sent nothing), which is also what the
/// old second-pass reduction read from their zeroed stats.
struct RoundAgg {
    /// Messages queued this round (the round's `in_flight`).
    sent: AtomicUsize,
    /// Payload bits queued this round.
    bits: AtomicUsize,
    /// Model words queued this round (`⌈bits/word_bits⌉` per message).
    words: AtomicUsize,
    /// Largest single message queued this round.
    max_bits: AtomicUsize,
    /// Stepped vertices that are *not* halted after this round; every
    /// skipped vertex is halted by definition, so `active == 0` is
    /// exactly the old all-halted conjunction.
    active: AtomicUsize,
    /// Smallest vertex id that recorded a model violation
    /// (`usize::MAX` = none) — the same tie-break the seed engine's
    /// in-order scan produced.
    err_vertex: AtomicUsize,
}

impl RoundAgg {
    fn new() -> Self {
        RoundAgg {
            sent: AtomicUsize::new(0),
            bits: AtomicUsize::new(0),
            words: AtomicUsize::new(0),
            max_bits: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            err_vertex: AtomicUsize::new(usize::MAX),
        }
    }

    /// Folds one stepped vertex's round results in.
    fn absorb(&self, v: usize, stats: &SendStats, halted: bool) {
        if stats.error.is_some() {
            self.err_vertex.fetch_min(v, Ordering::Relaxed);
        }
        if stats.sent > 0 {
            self.sent.fetch_add(stats.sent, Ordering::Relaxed);
            self.bits.fetch_add(stats.bits, Ordering::Relaxed);
            self.words.fetch_add(stats.words, Ordering::Relaxed);
            self.max_bits.fetch_max(stats.max_bits, Ordering::Relaxed);
        }
        if !halted {
            self.active.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs the engine stepping vertices one at a time, in ascending id
/// order. No `Send` bounds: programs may hold thread-local state.
pub(crate) fn run_sequential<P, F>(
    g: &Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    make: F,
    max_rounds: usize,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram,
    F: FnMut(VertexId) -> P,
{
    run_impl(
        g,
        make,
        max_rounds,
        |slots, halted, boxes, round, agg, active| {
            let (write, bcast, reader) = boxes.split_for_round(round);
            for &v in active {
                let vi = v as usize;
                let halt = &mut halted[vi];
                if round > 0 && *halt && !reader.has_mail(v) {
                    continue; // idle fast path: the Slot is never touched
                }
                let slot = &mut slots[vi];
                step_vertex(
                    g,
                    bandwidth_bits,
                    word_bits,
                    round,
                    v,
                    slot,
                    &mut write[vi],
                    &mut bcast[vi],
                    reader,
                    halt,
                );
                agg.absorb(vi, &slot.stats, *halt);
            }
        },
    )
}

/// Runs the engine stepping vertices in parallel over contiguous
/// chunks. Bit-identical to [`run_sequential`]; see the module docs.
pub(crate) fn run_parallel<P, F>(
    g: &Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    make: F,
    max_rounds: usize,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram + Send,
    P::Msg: Send + Sync,
    F: FnMut(VertexId) -> P,
{
    run_impl(
        g,
        make,
        max_rounds,
        |slots, halted, boxes, round, agg, active| {
            let (write, bcast, reader) = boxes.split_for_round(round);

            /// One thread's share of the round: a contiguous run of the
            /// (sorted, deduplicated) worklist plus the matching id-range
            /// sub-slices of the per-vertex state. Chunks cover disjoint id
            /// ranges, so handing each chunk exclusive `&mut` sub-slices is
            /// plain safe borrow splitting — no interior mutability, no
            /// unsafe indexing.
            struct Chunk<'a, P: VertexProgram> {
                /// First vertex id covered by this chunk's sub-slices.
                base: usize,
                ids: &'a [VertexId],
                slots: &'a mut [Slot<P>],
                write: &'a mut [OutBuf<P::Msg>],
                bcast: &'a mut [BcastCell<P::Msg>],
                halted: &'a mut [bool],
            }

            let per = active
                .len()
                .div_ceil(rayon::current_num_threads().max(1))
                .max(1);
            let mut chunks: Vec<Chunk<'_, P>> = Vec::new();
            let (mut slots, mut write, mut bcast, mut halted) =
                (slots, &mut write[..], &mut bcast[..], &mut halted[..]);
            let mut base = 0usize;
            for ids in active.chunks(per) {
                let hi = *ids.last().expect("chunks are non-empty") as usize + 1;
                let (s, s_rest) = slots.split_at_mut(hi - base);
                let (w, w_rest) = write.split_at_mut(hi - base);
                let (b, b_rest) = bcast.split_at_mut(hi - base);
                let (h, h_rest) = halted.split_at_mut(hi - base);
                (slots, write, bcast, halted) = (s_rest, w_rest, b_rest, h_rest);
                chunks.push(Chunk {
                    base,
                    ids,
                    slots: s,
                    write: w,
                    bcast: b,
                    halted: h,
                });
                base = hi;
            }

            chunks.par_iter_mut().for_each(|chunk| {
                for &v in chunk.ids {
                    let li = v as usize - chunk.base;
                    let halt = &mut chunk.halted[li];
                    if round > 0 && *halt && !reader.has_mail(v) {
                        continue; // idle fast path: the Slot is never touched
                    }
                    let slot = &mut chunk.slots[li];
                    step_vertex(
                        g,
                        bandwidth_bits,
                        word_bits,
                        round,
                        v,
                        slot,
                        &mut chunk.write[li],
                        &mut chunk.bcast[li],
                        reader,
                        halt,
                    );
                    agg.absorb(v as usize, &slot.stats, *halt);
                }
            });
        },
    )
}

/// Whether the full-scan fallback is requested: every round steps all
/// `n` slots behind the idle fast-path check, as the engine did before
/// the worklist. Kept as the reference the equivalence suite compares
/// the worklist against (and as an escape hatch).
fn full_scan_requested() -> bool {
    std::env::var_os("CONGEST_ENGINE_FULL_SCAN").is_some_and(|v| v != "0" && !v.is_empty())
}

/// The shared round loop; `step_all` executes one round over the given
/// worklist (this is the only thing the two modes do differently).
fn run_impl<P, F, S>(
    g: &Graph,
    mut make: F,
    max_rounds: usize,
    mut step_all: S,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram,
    F: FnMut(VertexId) -> P,
    S: FnMut(&mut [Slot<P>], &mut [bool], &mut Mailboxes<P::Msg>, usize, &RoundAgg, &[VertexId]),
{
    let n = g.n();
    let mut slots: Vec<Slot<P>> = (0..n as VertexId)
        .map(|v| Slot {
            program: make(v),
            inbox: Vec::new(),
            stats: SendStats::default(),
        })
        .collect();
    let mut halted = vec![false; n];
    let mut boxes: Mailboxes<P::Msg> = Mailboxes::new(g);
    let mut report = RunReport::default();
    let full_scan = full_scan_requested();

    // Round 0 steps every vertex (`init` runs everywhere); later rounds
    // step the worklist seeded by the previous round (see module docs).
    let mut active: Vec<VertexId> = (0..n as VertexId).collect();
    let mut next: Vec<VertexId> = Vec::new();
    let mut bitmap = vec![0u64; n.div_ceil(64)];

    let mut round = 0usize;
    loop {
        let agg = RoundAgg::new();
        step_all(&mut slots, &mut halted, &mut boxes, round, &agg, &active);
        let err = agg.err_vertex.load(Ordering::Relaxed);
        if err != usize::MAX {
            return Err(slots[err]
                .stats
                .error
                .clone()
                .expect("err_vertex recorded a violation"));
        }
        let in_flight = agg.sent.load(Ordering::Relaxed);
        report.messages += in_flight;
        report.bits += agg.bits.load(Ordering::Relaxed);
        report.words += agg.words.load(Ordering::Relaxed);
        report.max_link_bits_per_round = report
            .max_link_bits_per_round
            .max(agg.max_bits.load(Ordering::Relaxed));
        let all_halted = agg.active.load(Ordering::Relaxed) == 0;
        if all_halted && in_flight == 0 {
            break;
        }
        if round >= max_rounds {
            return Err(CongestError::RoundLimitExceeded { limit: max_rounds });
        }
        if full_scan {
            boxes.discard_active(); // `active` stays 0..n
        } else {
            boxes.drain_active_into(&mut next, &mut bitmap);
            std::mem::swap(&mut active, &mut next);
        }
        round += 1;
    }
    report.rounds = round;
    Ok((report, slots.into_iter().map(|s| s.program).collect()))
}

/// Delivers `v`'s inbox and steps its program; the one function both
/// execution modes run, so their behavior cannot diverge.
#[allow(clippy::too_many_arguments)] // the engine's full per-vertex context
fn step_vertex<P: VertexProgram>(
    g: &Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    round: usize,
    v: VertexId,
    slot: &mut Slot<P>,
    out: &mut OutBuf<P::Msg>,
    cell: &mut BcastCell<P::Msg>,
    reader: MailReader<'_, P::Msg>,
    halt: &mut bool,
) {
    slot.stats.reset();
    slot.inbox.clear();
    if round > 0 && reader.has_mail(v) {
        reader.gather(g, v, &mut slot.inbox);
    }
    if round > 0 && slot.inbox.is_empty() && slot.program.halted() {
        // Halted and silent: skip the program, stay halted.
        *halt = true;
        return;
    }
    let sink = crate::engine::validate::SendSink::new(
        v,
        g.neighbors(v),
        out,
        cell,
        reader,
        &mut slot.stats,
        round,
        bandwidth_bits,
        word_bits,
    );
    let mut ctx = Ctx::new(v, g, round, sink);
    if round == 0 {
        slot.program.init(&mut ctx);
    } else {
        slot.program.round(&mut ctx, &slot.inbox);
    }
    *halt = slot.program.halted();
    if !*halt {
        // Not halted: the vertex must step next round even without mail,
        // so it enrolls itself in the worklist (receivers are enrolled
        // by `flag_mail` at send time).
        reader.push_active(v);
    }
}
