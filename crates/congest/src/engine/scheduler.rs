//! The round loop: lock-step scheduling, halt detection and report
//! reduction, shared verbatim by the sequential and parallel paths.
//!
//! Each round has two logical phases fused into one pass over vertices:
//! pull-deliver the previous round's messages ([`super::mailbox`]), then
//! step the vertex program, validating sends eagerly
//! ([`super::validate`]). A vertex only ever mutates its own state and
//! its own writer arena segment while reading neighbors' segments from
//! the immutable reader arena, so the pass is embarrassingly parallel
//! over vertices — [`run_parallel`] runs the *same* per-vertex function
//! ([`step_vertex`]) under `rayon`, chunked over contiguous vertex
//! ranges, while [`run_sequential`] drives it in a plain loop (and
//! therefore needs no `Send` bounds on the programs).
//!
//! Two scale provisions keep long, mostly-idle runs cheap (the measured
//! decomposition's giant expander cluster streams for `Θ(max deg)`
//! rounds during which almost every vertex is halted and silent):
//!
//! * the halt flags live in a compact side vector, so skipping a halted,
//!   mail-less vertex reads two warm words and never touches its
//!   [`Slot`] (whose program state is hundreds of bytes);
//! * round statistics fold into a [`RoundAgg`] *during* the step pass —
//!   only vertices that actually stepped contribute — instead of a
//!   second full sweep over all per-vertex stats per round.
//!
//! Determinism: per-vertex results do not depend on visit order, the
//! inbox is gathered in sorted-sender order by construction, and the
//! [`RoundAgg`] reduction (message/bit sums, max link bits, min-vertex
//! error) is associative and commutative over integers — sequential and
//! parallel execution therefore produce bit-identical [`RunReport`]s,
//! final program states, and errors. `tests/engine_determinism.rs`
//! proves this property over randomized graphs and programs.

use crate::engine::mailbox::{BcastCell, MailReader, Mailboxes, OutBuf};
use crate::engine::validate::SendStats;
use crate::network::{Ctx, VertexProgram};
use crate::{CongestError, Result, RunReport};
use graph::{Graph, VertexId};
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Per-vertex engine state: the program plus reusable scratch.
pub(crate) struct Slot<P: VertexProgram> {
    program: P,
    /// Reused inbox buffer (cleared, not reallocated, each round).
    inbox: Vec<(VertexId, P::Msg)>,
    stats: SendStats,
}

/// One round's reduction, filled in by the stepping pass itself. All
/// fields are sums/maxes/mins of per-vertex integers, so the result is
/// independent of stepping order and of how vertices are chunked over
/// threads. Vertices skipped by the idle fast path contribute exactly
/// nothing (they are halted and sent nothing), which is also what the
/// old second-pass reduction read from their zeroed stats.
struct RoundAgg {
    /// Messages queued this round (the round's `in_flight`).
    sent: AtomicUsize,
    /// Payload bits queued this round.
    bits: AtomicUsize,
    /// Model words queued this round (`⌈bits/word_bits⌉` per message).
    words: AtomicUsize,
    /// Largest single message queued this round.
    max_bits: AtomicUsize,
    /// Stepped vertices that are *not* halted after this round; every
    /// skipped vertex is halted by definition, so `active == 0` is
    /// exactly the old all-halted conjunction.
    active: AtomicUsize,
    /// Smallest vertex id that recorded a model violation
    /// (`usize::MAX` = none) — the same tie-break the seed engine's
    /// in-order scan produced.
    err_vertex: AtomicUsize,
}

impl RoundAgg {
    fn new() -> Self {
        RoundAgg {
            sent: AtomicUsize::new(0),
            bits: AtomicUsize::new(0),
            words: AtomicUsize::new(0),
            max_bits: AtomicUsize::new(0),
            active: AtomicUsize::new(0),
            err_vertex: AtomicUsize::new(usize::MAX),
        }
    }

    /// Folds one stepped vertex's round results in.
    fn absorb(&self, v: usize, stats: &SendStats, halted: bool) {
        if stats.error.is_some() {
            self.err_vertex.fetch_min(v, Ordering::Relaxed);
        }
        if stats.sent > 0 {
            self.sent.fetch_add(stats.sent, Ordering::Relaxed);
            self.bits.fetch_add(stats.bits, Ordering::Relaxed);
            self.words.fetch_add(stats.words, Ordering::Relaxed);
            self.max_bits.fetch_max(stats.max_bits, Ordering::Relaxed);
        }
        if !halted {
            self.active.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Runs the engine stepping vertices one at a time, in ascending id
/// order. No `Send` bounds: programs may hold thread-local state.
pub(crate) fn run_sequential<P, F>(
    g: &Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    make: F,
    max_rounds: usize,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram,
    F: FnMut(VertexId) -> P,
{
    run_impl(g, make, max_rounds, |slots, halted, boxes, round, agg| {
        let (write, bcast, reader) = boxes.split_for_round(round);
        slots
            .iter_mut()
            .zip(write.iter_mut())
            .zip(bcast.iter_mut())
            .zip(halted.iter_mut())
            .enumerate()
            .for_each(|(v, (((slot, out), cell), halt))| {
                if round > 0 && *halt && !reader.has_mail(v as VertexId) {
                    return; // idle fast path: the Slot is never touched
                }
                step_vertex(
                    g,
                    bandwidth_bits,
                    word_bits,
                    round,
                    v as VertexId,
                    slot,
                    out,
                    cell,
                    reader,
                    halt,
                );
                agg.absorb(v, &slot.stats, *halt);
            });
    })
}

/// Runs the engine stepping vertices in parallel over contiguous
/// chunks. Bit-identical to [`run_sequential`]; see the module docs.
pub(crate) fn run_parallel<P, F>(
    g: &Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    make: F,
    max_rounds: usize,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram + Send,
    P::Msg: Send + Sync,
    F: FnMut(VertexId) -> P,
{
    run_impl(g, make, max_rounds, |slots, halted, boxes, round, agg| {
        let (write, bcast, reader) = boxes.split_for_round(round);
        slots
            .par_iter_mut()
            .zip(write.par_iter_mut())
            .zip(bcast.par_iter_mut())
            .zip(halted.par_iter_mut())
            .enumerate()
            .for_each(|(v, (((slot, out), cell), halt))| {
                if round > 0 && *halt && !reader.has_mail(v as VertexId) {
                    return; // idle fast path: the Slot is never touched
                }
                step_vertex(
                    g,
                    bandwidth_bits,
                    word_bits,
                    round,
                    v as VertexId,
                    slot,
                    out,
                    cell,
                    reader,
                    halt,
                );
                agg.absorb(v, &slot.stats, *halt);
            });
    })
}

/// The shared round loop; `step_all` executes one full round over all
/// vertices (this is the only thing the two modes do differently).
fn run_impl<P, F, S>(
    g: &Graph,
    mut make: F,
    max_rounds: usize,
    mut step_all: S,
) -> Result<(RunReport, Vec<P>)>
where
    P: VertexProgram,
    F: FnMut(VertexId) -> P,
    S: FnMut(&mut [Slot<P>], &mut [bool], &mut Mailboxes<P::Msg>, usize, &RoundAgg),
{
    let n = g.n();
    let mut slots: Vec<Slot<P>> = (0..n as VertexId)
        .map(|v| Slot {
            program: make(v),
            inbox: Vec::new(),
            stats: SendStats::default(),
        })
        .collect();
    let mut halted = vec![false; n];
    let mut boxes: Mailboxes<P::Msg> = Mailboxes::new(g);
    let mut report = RunReport::default();

    let mut round = 0usize;
    loop {
        let agg = RoundAgg::new();
        step_all(&mut slots, &mut halted, &mut boxes, round, &agg);
        let err = agg.err_vertex.load(Ordering::Relaxed);
        if err != usize::MAX {
            return Err(slots[err]
                .stats
                .error
                .clone()
                .expect("err_vertex recorded a violation"));
        }
        let in_flight = agg.sent.load(Ordering::Relaxed);
        report.messages += in_flight;
        report.bits += agg.bits.load(Ordering::Relaxed);
        report.words += agg.words.load(Ordering::Relaxed);
        report.max_link_bits_per_round = report
            .max_link_bits_per_round
            .max(agg.max_bits.load(Ordering::Relaxed));
        let all_halted = agg.active.load(Ordering::Relaxed) == 0;
        if all_halted && in_flight == 0 {
            break;
        }
        if round >= max_rounds {
            return Err(CongestError::RoundLimitExceeded { limit: max_rounds });
        }
        round += 1;
    }
    report.rounds = round;
    Ok((report, slots.into_iter().map(|s| s.program).collect()))
}

/// Delivers `v`'s inbox and steps its program; the one function both
/// execution modes run, so their behavior cannot diverge.
#[allow(clippy::too_many_arguments)] // the engine's full per-vertex context
fn step_vertex<P: VertexProgram>(
    g: &Graph,
    bandwidth_bits: usize,
    word_bits: usize,
    round: usize,
    v: VertexId,
    slot: &mut Slot<P>,
    out: &mut OutBuf<P::Msg>,
    cell: &mut BcastCell<P::Msg>,
    reader: MailReader<'_, P::Msg>,
    halt: &mut bool,
) {
    slot.stats.reset();
    slot.inbox.clear();
    if round > 0 && reader.has_mail(v) {
        reader.gather(g, v, &mut slot.inbox);
    }
    if round > 0 && slot.inbox.is_empty() && slot.program.halted() {
        // Halted and silent: skip the program, stay halted.
        *halt = true;
        return;
    }
    let sink = crate::engine::validate::SendSink::new(
        v,
        g.neighbors(v),
        out,
        cell,
        reader,
        &mut slot.stats,
        round,
        bandwidth_bits,
        word_bits,
    );
    let mut ctx = Ctx::new(v, g, round, sink);
    if round == 0 {
        slot.program.init(&mut ctx);
    } else {
        slot.program.round(&mut ctx, &slot.inbox);
    }
    *halt = slot.program.halted();
}
