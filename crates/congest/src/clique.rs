//! The CONGESTED-CLIQUE model: all-to-all communication with the same
//! `O(log n)`-bit-per-message budget, plus the Lenzen routing cost model.
//!
//! In CONGESTED-CLIQUE every pair of vertices has a (virtual) link, so per
//! round a vertex may send one message to **every** other vertex. The model
//! matters to the paper as the setting of the `Ω̃(n^{1/3})` triangle
//! enumeration lower bound and of the Dolev–Lenzen–Peled `O(n^{1/3})`
//! upper bound — Theorem 2 shows CONGEST matches it up to polylog factors.
//!
//! **Lenzen's routing theorem** is exposed as a cost model
//! ([`lenzen_rounds`]): any multi-commodity routing instance in which every
//! vertex is the source of at most `n` messages and the destination of at
//! most `n` messages can be delivered in `O(1)` rounds. Algorithms built on
//! it (the DLP triangle lister) count `⌈load/n⌉·C_LENZEN` rounds per batch.

use crate::{CongestError, Payload, Result, RunReport};
use graph::VertexId;

/// The constant hidden in Lenzen's `O(1)`-round routing theorem.
///
/// Lenzen's deterministic protocol delivers any instance with per-vertex
/// in/out load `≤ n` in 16 rounds; we charge this constant.
pub const LENZEN_CONSTANT: usize = 16;

/// Rounds needed to deliver a routing instance in CONGESTED-CLIQUE under
/// Lenzen's theorem: each batch of per-vertex load `n` costs
/// [`LENZEN_CONSTANT`] rounds.
///
/// `max_out` / `max_in` are the maximum number of messages any vertex
/// sends / receives.
///
/// # Example
///
/// ```
/// use congest::clique::{lenzen_rounds, LENZEN_CONSTANT};
/// // Load exactly n on both sides: one batch.
/// assert_eq!(lenzen_rounds(1000, 1000, 1000), LENZEN_CONSTANT);
/// // 2.5n outgoing load: three batches.
/// assert_eq!(lenzen_rounds(2500, 100, 1000), 3 * LENZEN_CONSTANT);
/// ```
pub fn lenzen_rounds(max_out: usize, max_in: usize, n: usize) -> usize {
    if n == 0 {
        return 0;
    }
    let batches = max_out.max(max_in).div_ceil(n);
    batches * LENZEN_CONSTANT
}

/// A per-vertex program in the CONGESTED-CLIQUE model.
///
/// Identical contract to [`crate::VertexProgram`] except sends may target
/// *any* other vertex.
pub trait CliqueProgram {
    /// Message type (bit-accounted like in CONGEST).
    type Msg: Payload;

    /// One-time initialization.
    fn init(&mut self, ctx: &mut CliqueCtx<'_, Self::Msg>);

    /// One synchronous round; `inbox` is sorted by sender.
    fn round(&mut self, ctx: &mut CliqueCtx<'_, Self::Msg>, inbox: &[(VertexId, Self::Msg)]);

    /// Whether this vertex votes to halt.
    fn halted(&self) -> bool;
}

/// Per-vertex context in the clique model.
#[derive(Debug)]
pub struct CliqueCtx<'a, M> {
    me: VertexId,
    n: usize,
    round: usize,
    outbox: &'a mut Vec<(VertexId, M)>,
}

impl<M: Payload> CliqueCtx<'_, M> {
    /// This vertex's id.
    pub fn me(&self) -> VertexId {
        self.me
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Current round (0 during init).
    pub fn round(&self) -> usize {
        self.round
    }

    /// Queues a message to any other vertex.
    pub fn send(&mut self, to: VertexId, msg: M) {
        self.outbox.push((to, msg));
    }
}

/// A CONGESTED-CLIQUE network on `n` vertices.
#[derive(Debug, Clone)]
pub struct Clique {
    n: usize,
    bandwidth_bits: usize,
    word_bits: usize,
}

impl Clique {
    /// A clique network on `n` vertices with the default
    /// `max(128, 16·⌈log₂ n⌉)`-bit message budget.
    pub fn new(n: usize) -> Self {
        let log_n = crate::packed::word_bits(n);
        Clique {
            n,
            bandwidth_bits: (16 * log_n).max(128),
            word_bits: log_n,
        }
    }

    /// Overrides the per-message bandwidth budget in bits.
    pub fn with_bandwidth_bits(mut self, bits: usize) -> Self {
        self.bandwidth_bits = bits;
        self
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Runs one program instance per vertex until global halt.
    ///
    /// # Errors
    ///
    /// [`CongestError::CliqueQuotaExceeded`] if a vertex sends more than
    /// `n − 1` messages in one round or sends twice to the same recipient;
    /// [`CongestError::BandwidthExceeded`] / `RoundLimitExceeded` as in
    /// CONGEST.
    pub fn run_collect<P, F>(&self, mut make: F, max_rounds: usize) -> Result<(RunReport, Vec<P>)>
    where
        P: CliqueProgram,
        F: FnMut(VertexId) -> P,
    {
        let n = self.n;
        let mut programs: Vec<P> = (0..n as VertexId).map(&mut make).collect();
        let mut report = RunReport::default();
        // Double-buffered inboxes, allocated once and recycled: `cur` is
        // consumed this round, `next` collects this round's sends. (The
        // seed allocated a fresh `vec![Vec::new(); n]` every round.)
        let mut cur: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); n];
        let mut next: Vec<Vec<(VertexId, P::Msg)>> = vec![Vec::new(); n];
        let mut mailbox = DispatchState::new(n);
        let mut outbox: Vec<(VertexId, P::Msg)> = Vec::new();
        let mut in_flight = 0usize;

        for v in 0..n as VertexId {
            let mut ctx = CliqueCtx {
                me: v,
                n,
                round: 0,
                outbox: &mut outbox,
            };
            programs[v as usize].init(&mut ctx);
            in_flight += self.dispatch(v, &mut outbox, &mut mailbox, &mut next, &mut report)?;
        }

        let mut round = 0usize;
        loop {
            if in_flight == 0 && programs.iter().all(CliqueProgram::halted) {
                break;
            }
            if round >= max_rounds {
                return Err(CongestError::RoundLimitExceeded { limit: max_rounds });
            }
            round += 1;
            std::mem::swap(&mut cur, &mut next);
            in_flight = 0;
            for v in 0..n as VertexId {
                let inbox = &mut cur[v as usize];
                if inbox.is_empty() && programs[v as usize].halted() {
                    continue;
                }
                // Senders dispatch in ascending id order, so each inbox
                // arrives already sorted by sender — no sort needed.
                debug_assert!(inbox.windows(2).all(|w| w[0].0 < w[1].0));
                let mut ctx = CliqueCtx {
                    me: v,
                    n,
                    round,
                    outbox: &mut outbox,
                };
                programs[v as usize].round(&mut ctx, inbox);
                inbox.clear();
                in_flight += self.dispatch(v, &mut outbox, &mut mailbox, &mut next, &mut report)?;
            }
        }
        report.rounds = round;
        Ok((report, programs))
    }

    /// Validates and delivers one vertex's outbox, draining it for reuse;
    /// returns how many messages were dispatched.
    fn dispatch<M: Payload>(
        &self,
        from: VertexId,
        outbox: &mut Vec<(VertexId, M)>,
        mailbox: &mut DispatchState,
        inboxes: &mut [Vec<(VertexId, M)>],
        report: &mut RunReport,
    ) -> Result<usize> {
        let count = outbox.len();
        if count > self.n.saturating_sub(1) {
            outbox.clear();
            return Err(CongestError::CliqueQuotaExceeded {
                vertex: from,
                count,
                quota: self.n - 1,
            });
        }
        // A fresh token per (vertex, round) dispatch: a recipient slot
        // stamped with the current token means a duplicate send. O(1) per
        // message, replacing the seed's O(out²) `seen.contains` scan.
        let token = mailbox.fresh_token();
        for (to, msg) in outbox.drain(..) {
            if to == from || (to as usize) >= self.n || mailbox.stamp[to as usize] == token {
                return Err(CongestError::CliqueQuotaExceeded {
                    vertex: from,
                    count: count + 1,
                    quota: self.n - 1,
                });
            }
            mailbox.stamp[to as usize] = token;
            let bits = msg.encoded_bits();
            if bits > self.bandwidth_bits {
                return Err(CongestError::BandwidthExceeded {
                    from,
                    bits,
                    budget: self.bandwidth_bits,
                });
            }
            report.messages += 1;
            report.bits += bits;
            report.words += bits.div_ceil(self.word_bits);
            report.max_link_bits_per_round = report.max_link_bits_per_round.max(bits);
            inboxes[to as usize].push((from, msg));
        }
        Ok(count)
    }
}

/// Recipient stamps for duplicate-send detection, shared across all
/// dispatches of a run.
struct DispatchState {
    stamp: Vec<u64>,
    token: u64,
}

impl DispatchState {
    fn new(n: usize) -> Self {
        // Token 0 is never issued, so fresh stamps match nothing.
        DispatchState {
            stamp: vec![0; n],
            token: 0,
        }
    }

    fn fresh_token(&mut self) -> u64 {
        self.token += 1;
        self.token
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lenzen_batching() {
        assert_eq!(lenzen_rounds(0, 0, 100), 0);
        assert_eq!(lenzen_rounds(1, 1, 100), LENZEN_CONSTANT);
        assert_eq!(lenzen_rounds(100, 100, 100), LENZEN_CONSTANT);
        assert_eq!(lenzen_rounds(101, 1, 100), 2 * LENZEN_CONSTANT);
        assert_eq!(lenzen_rounds(1, 350, 100), 4 * LENZEN_CONSTANT);
        assert_eq!(lenzen_rounds(5, 5, 0), 0);
    }

    /// Every vertex sends its id to vertex 0, which sums them.
    struct Gather {
        sum: u64,
        sent: bool,
    }

    impl CliqueProgram for Gather {
        type Msg = u64;
        fn init(&mut self, ctx: &mut CliqueCtx<'_, u64>) {
            if ctx.me() != 0 {
                ctx.send(0, ctx.me() as u64);
            }
            self.sent = true;
        }
        fn round(&mut self, _ctx: &mut CliqueCtx<'_, u64>, inbox: &[(VertexId, u64)]) {
            self.sum += inbox.iter().map(|&(_, x)| x).sum::<u64>();
        }
        fn halted(&self) -> bool {
            self.sent
        }
    }

    #[test]
    fn all_to_one_gather_is_one_round() {
        let clique = Clique::new(10);
        let (report, progs) = clique
            .run_collect(
                |_| Gather {
                    sum: 0,
                    sent: false,
                },
                10,
            )
            .unwrap();
        assert_eq!(report.rounds, 1);
        assert_eq!(progs[0].sum, (1..10).sum::<u64>());
    }

    #[derive(Debug)]
    struct Spammer;
    impl CliqueProgram for Spammer {
        type Msg = u64;
        fn init(&mut self, ctx: &mut CliqueCtx<'_, u64>) {
            if ctx.me() == 0 {
                // Send twice to vertex 1.
                ctx.send(1, 1);
                ctx.send(1, 2);
            }
        }
        fn round(&mut self, _: &mut CliqueCtx<'_, u64>, _: &[(VertexId, u64)]) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn duplicate_recipient_rejected() {
        let err = Clique::new(4).run_collect(|_| Spammer, 10).unwrap_err();
        assert!(matches!(
            err,
            CongestError::CliqueQuotaExceeded { vertex: 0, .. }
        ));
    }

    #[derive(Debug)]
    struct SelfSender;
    impl CliqueProgram for SelfSender {
        type Msg = u64;
        fn init(&mut self, ctx: &mut CliqueCtx<'_, u64>) {
            let me = ctx.me();
            ctx.send(me, 1);
        }
        fn round(&mut self, _: &mut CliqueCtx<'_, u64>, _: &[(VertexId, u64)]) {}
        fn halted(&self) -> bool {
            true
        }
    }

    #[test]
    fn self_send_rejected() {
        let err = Clique::new(4).run_collect(|_| SelfSender, 10).unwrap_err();
        assert!(matches!(err, CongestError::CliqueQuotaExceeded { .. }));
    }
}
