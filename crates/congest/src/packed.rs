//! Bandwidth-packed id streams: the delta-varint wire format that lets a
//! vertex ship several neighbor ids in one `O(log n)`-bit-budget message.
//!
//! The CONGEST model grants each edge `O(log n)` bits per round — the
//! engine's default budget is a fixed constant number of
//! `⌈log₂ n⌉`-bit *words* ([`crate::Network::new`]). A program streaming
//! a **sorted** id list one `u32` per round wastes almost all of that
//! budget: consecutive neighbor ids are close, so their gaps fit in one
//! or two bytes of a varint. This module defines the wire format the
//! adjacency-exchange phase of the triangle pipeline uses (DESIGN.md
//! §10):
//!
//! * the stream is a strictly increasing id sequence, split across
//!   rounds; stream state (the last id shipped) lives on both ends, so
//!   each message carries only fresh gaps;
//! * each id is encoded as the LEB128 varint of `id - prev` where
//!   `prev` starts at 0 and becomes `last_id + 1` after every id
//!   (strictly increasing streams therefore encode small non-negative
//!   deltas, and id 0 is representable);
//! * messages are packed **greedily**: ids are appended while the next
//!   varint still fits the per-round byte budget
//!   ([`round_budget_bytes`]), so every message except the last is
//!   within 4 bytes of full.
//!
//! Decoding is incremental and total: [`IdStreamDecoder::decode_each`]
//! returns a [`PackedError`] for truncated or overflowing varints
//! instead of panicking, so a corrupted payload surfaces as a validation
//! error the caller can report.

use crate::Payload;

/// Upper bound on the payload bytes of one [`PackedIds`] message.
///
/// Sized for the engine's default budget of `16·⌈log₂ n⌉` bits at
/// `n ≤ 2³²` (64 bytes); [`round_budget_bytes`] clamps larger configured
/// budgets down to it. Keeping the buffer inline (no heap indirection)
/// makes a packed message as cheap to copy through the mailbox arenas as
/// the plain `u32` it replaces.
pub const MAX_PACKED_BYTES: usize = 64;

/// Worst-case LEB128 length of a `u32` delta (5 × 7 bits ≥ 32 bits).
pub const MAX_VARINT_BYTES: usize = 5;

/// One packed message: up to [`MAX_PACKED_BYTES`] varint bytes, inline.
///
/// The model size ([`Payload::encoded_bits`]) is the *used* bytes only —
/// the inline capacity is a host-memory artifact, not wire format.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct PackedIds {
    len: u8,
    bytes: [u8; MAX_PACKED_BYTES],
}

impl std::fmt::Debug for PackedIds {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PackedIds")
            .field("bytes", &&self.bytes[..self.len as usize])
            .finish()
    }
}

impl Payload for PackedIds {
    /// The used varint bytes, charged at 8 bits each.
    fn encoded_bits(&self) -> usize {
        8 * self.len as usize
    }
}

/// Why a packed payload failed to decode. Decoding is total: malformed
/// input yields one of these, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackedError {
    /// The payload ended in the middle of a varint (continuation bit set
    /// on the last byte). `at` is the byte offset of the truncated
    /// varint's first byte.
    Truncated {
        /// Byte offset where the unterminated varint starts.
        at: usize,
    },
    /// A varint ran past [`MAX_VARINT_BYTES`] bytes or overflowed the
    /// `u32` id space. `at` is the byte offset of the offending varint.
    Overflow {
        /// Byte offset where the oversized varint starts.
        at: usize,
    },
}

impl std::fmt::Display for PackedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PackedError::Truncated { at } => {
                write!(f, "packed payload truncated mid-varint at byte {at}")
            }
            PackedError::Overflow { at } => {
                write!(f, "packed varint at byte {at} overflows the u32 id space")
            }
        }
    }
}

impl std::error::Error for PackedError {}

impl PackedIds {
    /// An empty message (0 bytes, 0 model bits).
    pub fn empty() -> Self {
        PackedIds {
            len: 0,
            bytes: [0; MAX_PACKED_BYTES],
        }
    }

    /// Wraps raw bytes as a message, or `None` if they exceed
    /// [`MAX_PACKED_BYTES`]. The bytes are *not* validated — use
    /// [`PackedIds::validate`] or decode to find malformed varints.
    pub fn from_bytes(bytes: &[u8]) -> Option<Self> {
        if bytes.len() > MAX_PACKED_BYTES {
            return None;
        }
        let mut msg = PackedIds::empty();
        msg.bytes[..bytes.len()].copy_from_slice(bytes);
        msg.len = bytes.len() as u8;
        Some(msg)
    }

    /// The used payload bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[..self.len as usize]
    }

    /// Number of ids carried, or the decode error — a full well-formedness
    /// check without materializing the ids.
    pub fn validate(&self) -> Result<usize, PackedError> {
        IdStreamDecoder::new().decode_each(self, |_| {})
    }

    fn push(&mut self, b: u8) {
        self.bytes[self.len as usize] = b;
        self.len += 1;
    }
}

/// Sender-side stream state: packs a strictly increasing id slice into
/// successive budget-bounded messages.
///
/// The encoder owns only cursors — the id list itself stays wherever the
/// program keeps it — so one encoder per vertex costs two words.
#[derive(Debug, Clone, Copy, Default)]
pub struct IdStreamEncoder {
    /// Next index of the backing slice to encode.
    pos: usize,
    /// Delta base: 0 initially, `last_id + 1` after every encoded id.
    prev: u32,
}

impl IdStreamEncoder {
    /// A fresh encoder positioned at the start of the stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// How many items of `items` have been packed so far.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Whether the whole slice has been shipped.
    pub fn finished(&self, items: &[u32]) -> bool {
        self.pos >= items.len()
    }

    /// Packs the next run of `items` greedily into one message: ids are
    /// appended while their varint fits `budget_bytes` (clamped to
    /// [`MAX_PACKED_BYTES`]) and at most `max_ids` ids are taken —
    /// `max_ids = 1` is the unpacked one-id-per-round ablation. Returns
    /// `None` when the stream is exhausted.
    ///
    /// `items` must be strictly increasing and must be the same slice on
    /// every call (the encoder resumes mid-stream); both are debug
    /// asserted. A `budget_bytes < MAX_VARINT_BYTES` would stall on a
    /// worst-case gap, so the budget is raised to [`MAX_VARINT_BYTES`] —
    /// callers wanting model fidelity keep budgets ≥ one word anyway.
    pub fn next_message(
        &mut self,
        items: &[u32],
        budget_bytes: usize,
        max_ids: usize,
    ) -> Option<PackedIds> {
        if self.pos >= items.len() {
            return None;
        }
        let budget = budget_bytes.clamp(MAX_VARINT_BYTES, MAX_PACKED_BYTES);
        let mut msg = PackedIds::empty();
        let mut taken = 0usize;
        while self.pos < items.len() && taken < max_ids.max(1) {
            let id = items[self.pos];
            debug_assert!(
                id >= self.prev,
                "id stream must be strictly increasing ({} after {})",
                id,
                self.prev.wrapping_sub(1),
            );
            let delta = id.wrapping_sub(self.prev);
            let width = varint_len(delta);
            if msg.len as usize + width > budget {
                break;
            }
            encode_varint(delta, &mut msg);
            self.prev = id.wrapping_add(1);
            self.pos += 1;
            taken += 1;
        }
        debug_assert!(taken > 0, "one varint always fits the clamped budget");
        Some(msg)
    }
}

/// Receiver-side stream state: the mirror of [`IdStreamEncoder`].
#[derive(Debug, Clone, Copy, Default)]
pub struct IdStreamDecoder {
    prev: u32,
}

impl IdStreamDecoder {
    /// A fresh decoder positioned at the start of the stream.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decodes every id of `msg`, calling `emit` in stream order, and
    /// returns how many ids the message carried.
    ///
    /// # Errors
    ///
    /// [`PackedError::Truncated`] if the payload ends mid-varint,
    /// [`PackedError::Overflow`] if a varint exceeds the `u32` id space.
    /// On error the decoder state is unchanged from the last fully
    /// decoded id, and `emit` has been called for exactly the ids
    /// decoded before the error.
    pub fn decode_each(
        &mut self,
        msg: &PackedIds,
        mut emit: impl FnMut(u32),
    ) -> Result<usize, PackedError> {
        let bytes = msg.bytes();
        let mut at = 0usize;
        let mut count = 0usize;
        while at < bytes.len() {
            let (delta, width) = decode_varint(&bytes[at..], at)?;
            let id = self.prev.wrapping_add(delta);
            self.prev = id.wrapping_add(1);
            emit(id);
            at += width;
            count += 1;
        }
        Ok(count)
    }
}

/// LEB128 length of `delta`.
fn varint_len(delta: u32) -> usize {
    match delta {
        0..=0x7F => 1,
        0x80..=0x3FFF => 2,
        0x4000..=0x1F_FFFF => 3,
        0x20_0000..=0xFFF_FFFF => 4,
        _ => 5,
    }
}

fn encode_varint(mut delta: u32, out: &mut PackedIds) {
    while delta >= 0x80 {
        out.push((delta as u8) | 0x80);
        delta >>= 7;
    }
    out.push(delta as u8);
}

/// Decodes one LEB128 varint from the front of `bytes`; `offset` is only
/// used to report error positions. Returns `(value, bytes consumed)`.
fn decode_varint(bytes: &[u8], offset: usize) -> Result<(u32, usize), PackedError> {
    let mut value: u32 = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if i >= MAX_VARINT_BYTES {
            return Err(PackedError::Overflow { at: offset });
        }
        let payload = (b & 0x7F) as u32;
        // The 5th byte may only carry the top 4 bits of a u32.
        if i == MAX_VARINT_BYTES - 1 && payload > 0x0F {
            return Err(PackedError::Overflow { at: offset });
        }
        value |= payload << (7 * i);
        if b & 0x80 == 0 {
            return Ok((value, i + 1));
        }
    }
    Err(PackedError::Truncated { at: offset })
}

/// The model's word size for an `n`-vertex network: `⌈log₂ n⌉` bits
/// (with the conventional floor of 1 bit for degenerate `n`).
pub fn word_bits(n: usize) -> usize {
    ((n.max(2)) as f64).log2().ceil() as usize
}

/// The per-round packing budget in bytes for a link with
/// `bandwidth_bits` of budget: the whole per-edge budget, floored to
/// bytes and clamped to [`MAX_PACKED_BYTES`] (and up to
/// [`MAX_VARINT_BYTES`] so a worst-case gap always ships).
pub fn round_budget_bytes(bandwidth_bits: usize) -> usize {
    (bandwidth_bits / 8).clamp(MAX_VARINT_BYTES, MAX_PACKED_BYTES)
}

/// A *guaranteed* lower bound on ids per full message under
/// `budget_bytes`: every varint is at most [`MAX_VARINT_BYTES`] bytes,
/// so at least this many ids fit regardless of gap structure. The
/// round-complexity regression test bounds measured exchange rounds by
/// `⌈Δ / min_ids_per_message⌉ + O(1)`; real streams pack 2–5× more.
pub fn min_ids_per_message(budget_bytes: usize) -> usize {
    (budget_bytes.min(MAX_PACKED_BYTES) / MAX_VARINT_BYTES).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// Drains `items` through an encoder with the given knobs and returns
    /// the messages.
    fn pack_all(items: &[u32], budget_bytes: usize, max_ids: usize) -> Vec<PackedIds> {
        let mut enc = IdStreamEncoder::new();
        let mut out = Vec::new();
        while let Some(msg) = enc.next_message(items, budget_bytes, max_ids) {
            out.push(msg);
        }
        assert!(enc.finished(items));
        out
    }

    fn decode_all(msgs: &[PackedIds]) -> Vec<u32> {
        let mut dec = IdStreamDecoder::new();
        let mut out = Vec::new();
        for m in msgs {
            dec.decode_each(m, |id| out.push(id)).expect("valid stream");
        }
        out
    }

    /// Strictly increasing id list from arbitrary (gap, start) choices.
    fn ascending(start: u32, gaps: &[u32]) -> Vec<u32> {
        let mut v = Vec::with_capacity(gaps.len());
        let mut cur = start % 1000;
        for &g in gaps {
            v.push(cur);
            cur = cur.saturating_add(g % 5000).saturating_add(1);
        }
        v
    }

    #[test]
    fn round_trips_simple_streams() {
        for items in [
            vec![],
            vec![0],
            vec![0, 1, 2, 3],
            vec![5, 100, 101, 4000, 1 << 20, u32::MAX - 1],
            (0..500).map(|i| i * 3).collect::<Vec<u32>>(),
        ] {
            let msgs = pack_all(&items, 16, usize::MAX);
            assert_eq!(decode_all(&msgs), items);
        }
    }

    #[test]
    fn empty_stream_produces_no_messages() {
        assert!(pack_all(&[], 16, usize::MAX).is_empty());
        let mut enc = IdStreamEncoder::new();
        assert!(enc.next_message(&[], 64, usize::MAX).is_none());
    }

    #[test]
    fn unpacked_mode_ships_one_id_per_message() {
        let items: Vec<u32> = (0..37).map(|i| i * 7).collect();
        let msgs = pack_all(&items, 64, 1);
        assert_eq!(msgs.len(), items.len());
        assert_eq!(decode_all(&msgs), items);
    }

    #[test]
    fn greedy_packing_respects_the_byte_budget_and_makes_progress() {
        let items: Vec<u32> = (0..1000).map(|i| i * 11).collect();
        for budget in [5usize, 8, 16, 36, 64, 500] {
            let msgs = pack_all(&items, budget, usize::MAX);
            let cap = budget.clamp(MAX_VARINT_BYTES, MAX_PACKED_BYTES);
            for m in &msgs {
                assert!(m.bytes().len() <= cap, "budget {budget} violated");
                assert!(m.encoded_bits() <= 8 * cap);
            }
            // Dense small gaps: at least min_ids ids per full message.
            let min_ids = min_ids_per_message(cap);
            assert!(msgs.len() <= items.len().div_ceil(min_ids));
            assert_eq!(decode_all(&msgs), items);
        }
    }

    #[test]
    fn validate_counts_ids() {
        let items = vec![3, 9, 12, 100_000];
        let msgs = pack_all(&items, 64, usize::MAX);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].validate(), Ok(4));
        assert_eq!(PackedIds::empty().validate(), Ok(0));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        // 300 encodes as 2 bytes; keep only the first (continuation set).
        let msgs = pack_all(&[300], 16, usize::MAX);
        let full = msgs[0].bytes();
        assert_eq!(full.len(), 2);
        let cut = PackedIds::from_bytes(&full[..1]).unwrap();
        assert_eq!(cut.validate(), Err(PackedError::Truncated { at: 0 }));
    }

    #[test]
    fn oversized_varints_are_overflow_errors() {
        // Six continuation bytes: runs past MAX_VARINT_BYTES.
        let long = PackedIds::from_bytes(&[0x80; 6]).unwrap();
        assert!(matches!(
            long.validate(),
            Err(PackedError::Overflow { at: 0 })
        ));
        // A 5-byte varint whose top byte exceeds u32's remaining 4 bits.
        let wide = PackedIds::from_bytes(&[0xFF, 0xFF, 0xFF, 0xFF, 0x1F]).unwrap();
        assert!(matches!(
            wide.validate(),
            Err(PackedError::Overflow { at: 0 })
        ));
        // The maximum id itself is fine.
        let msgs = pack_all(&[u32::MAX], 16, usize::MAX);
        assert_eq!(decode_all(&msgs), vec![u32::MAX]);
    }

    #[test]
    fn from_bytes_rejects_oversized_payloads() {
        assert!(PackedIds::from_bytes(&[0u8; MAX_PACKED_BYTES]).is_some());
        assert!(PackedIds::from_bytes(&[0u8; MAX_PACKED_BYTES + 1]).is_none());
    }

    #[test]
    fn budget_helpers_are_consistent() {
        assert_eq!(word_bits(2), 1);
        assert_eq!(word_bits(1024), 10);
        assert_eq!(word_bits(1_000_000), 20);
        // The engine default 16·⌈log₂ n⌉ with a 128-bit floor.
        assert_eq!(round_budget_bytes(128), 16);
        assert_eq!(round_budget_bytes(16 * 20), 40);
        assert_eq!(round_budget_bytes(8), MAX_VARINT_BYTES);
        assert_eq!(round_budget_bytes(100_000), MAX_PACKED_BYTES);
        assert_eq!(min_ids_per_message(16), 3);
        assert_eq!(min_ids_per_message(64), 12);
        assert_eq!(min_ids_per_message(1), 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(192))]

        #[test]
        fn fuzz_round_trip_identity(
            start in any::<u32>(),
            gaps in proptest::collection::vec(any::<u32>(), 64),
            budget in 5usize..80,
            max_ids in 1usize..20,
        ) {
            let items = ascending(start, &gaps);
            let msgs = pack_all(&items, budget, max_ids);
            prop_assert_eq!(decode_all(&msgs), items);
        }

        #[test]
        fn fuzz_decode_of_arbitrary_bytes_never_panics(
            raw in proptest::collection::vec(any::<u32>(), 24),
            len in 0usize..24,
        ) {
            let bytes: Vec<u8> = raw.iter().take(len).map(|&w| w as u8).collect();
            let msg = PackedIds::from_bytes(&bytes).unwrap();
            // Total: either a count or a typed error, never a panic.
            let verdict = msg.validate();
            let mut ids = Vec::new();
            let decoded = IdStreamDecoder::new().decode_each(&msg, |id| ids.push(id));
            prop_assert_eq!(verdict, decoded);
            if let Ok(count) = decoded {
                prop_assert_eq!(ids.len(), count);
            }
        }

        #[test]
        fn fuzz_truncating_a_valid_stream_errs_or_shortens(
            start in any::<u32>(),
            gaps in proptest::collection::vec(any::<u32>(), 32),
            cut in 0usize..64,
        ) {
            let items = ascending(start, &gaps);
            let msgs = pack_all(&items, 64, usize::MAX);
            let full = msgs[0].bytes();
            let cut = cut.min(full.len());
            let truncated = PackedIds::from_bytes(&full[..cut]).unwrap();
            match truncated.validate() {
                // Cut on a varint boundary: a valid prefix of the stream.
                Ok(count) => {
                    let mut ids = Vec::new();
                    IdStreamDecoder::new()
                        .decode_each(&truncated, |id| ids.push(id))
                        .unwrap();
                    prop_assert_eq!(count, ids.len());
                    prop_assert_eq!(&ids[..], &items[..count]);
                }
                // Cut mid-varint: a typed truncation error.
                Err(e) => prop_assert!(matches!(e, PackedError::Truncated { .. })),
            }
        }
    }
}
