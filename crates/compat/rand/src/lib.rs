//! Offline compatibility shim for the subset of the `rand` 0.9 API this
//! workspace uses.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! stands in for the real `rand`. It provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded with
//!   SplitMix64 (not the same stream as upstream `StdRng`, but the
//!   workspace only relies on *seeded determinism*, never on a specific
//!   stream).
//! * [`Rng::random`] / [`Rng::random_range`] — the rand 0.9 method names.
//! * [`SeedableRng::seed_from_u64`].
//! * [`seq::SliceRandom::shuffle`] — Fisher–Yates.
//!
//! Swap the `rand` entry in the root `[workspace.dependencies]` for the
//! real crate to drop this shim; no client code changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Low-level generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding interface (only the `u64` entry point is provided).
pub trait SeedableRng: Sized {
    /// Deterministically constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's native stream
/// (the shim's analogue of `StandardUniform: Distribution<T>`).
pub trait UniformPrimitive {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformPrimitive for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

impl UniformPrimitive for u16 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u16
    }
}

impl UniformPrimitive for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformPrimitive for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl UniformPrimitive for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl UniformPrimitive for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformPrimitive for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Types usable as `random_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)`. Callers guarantee `lo < hi`.
    fn draw_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn draw_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128) - (lo as u128);
                // Lemire-style scaling: maps a 64-bit word onto the span.
                // The bias is < span/2^64, irrelevant at the spans used here.
                let scaled = (rng.next_u64() as u128 * span) >> 64;
                lo + scaled as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn draw_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        lo + (hi - lo) * f64::draw(rng)
    }
}

/// High-level sampling methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Samples a value of `T` from the generator's uniform stream.
    fn random<T: UniformPrimitive>(&mut self) -> T {
        T::draw(self)
    }

    /// Samples uniformly from the half-open `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        assert!(
            range.start < range.end,
            "random_range called with empty range"
        );
        T::draw_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Seeded via SplitMix64 exactly as the xoshiro authors recommend, so a
    /// given `u64` seed always yields the same stream on every platform.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed into the full 256-bit state.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling for slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn f64_samples_lie_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut acc = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            acc += x;
        }
        let mean = acc / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 1/2");
    }

    #[test]
    fn ranges_are_respected_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            let x: usize = rng.random_range(0..10);
            counts[x] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            assert!(c > 700 && c < 1300, "bucket {i} count {c}");
        }
        for _ in 0..1000 {
            let x: u32 = rng.random_range(5..6);
            assert_eq!(x, 5);
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u32 = rng.random_range(3..3);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }
}
