//! Offline compatibility shim for the subset of the `criterion` API the
//! bench suite uses.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! stands in for the real `criterion`. It implements honest wall-clock
//! measurement — warmup, automatic per-sample iteration scaling, and
//! median/mean/min reporting — without criterion's statistical machinery
//! (no outlier analysis, no HTML reports, no saved baselines).
//!
//! Swap the `criterion` entry in the root `[workspace.dependencies]` for
//! the real crate to drop this shim; no client code changes.
//!
//! Two environment variables drive the CI bench gate (see
//! `.github/workflows/ci.yml` and `bench_gate`):
//!
//! * `CRITERION_QUICK=1` — quick mode: fewer samples and a smaller
//!   per-sample time target, for smoke runs.
//! * `CRITERION_BENCH_JSON=<path>` — append one JSON line per finished
//!   benchmark (`{"name": ..., "median_s": ..., "mean_s": ...,
//!   "min_s": ...}`) to `<path>`. Append-only so the independent bench
//!   binaries `cargo bench` spawns can share one file; `bench_gate
//!   collect` folds the lines into a single JSON object.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::io::Write;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver, handed to each `criterion_group!` function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("\n== group: {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }
}

/// A named collection of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut f,
        );
        self
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        run_bench(
            &format!("{}/{}", self.name, id.label),
            self.sample_size,
            &mut |b| f(b, input),
        );
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group: `function_name/parameter`.
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id made of a function name and a displayed parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId {
            label: s.to_string(),
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { label: s }
    }
}

/// Timer handle passed to the benchmark closure.
pub struct Bencher {
    /// Iterations to run per timed sample.
    iters: u64,
    /// Total measured time of the last `iter` call.
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`; the shim calls the closure
    /// once per sample with an automatically scaled iteration count.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Target wall-time for one measured sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Quick-mode (smoke) per-sample target.
const SAMPLE_TARGET_QUICK: Duration = Duration::from_millis(2);
/// Quick-mode cap on the number of samples.
const QUICK_SAMPLES: usize = 5;

/// Whether `CRITERION_QUICK` asks for the smoke configuration.
fn quick_mode() -> bool {
    std::env::var("CRITERION_BENCH_QUICK")
        .or_else(|_| std::env::var("CRITERION_QUICK"))
        .map(|v| !v.is_empty() && v != "0")
        .unwrap_or(false)
}

/// Appends one JSON record to the `CRITERION_BENCH_JSON` file, if set.
fn emit_json(label: &str, median: f64, mean: f64, min: f64) {
    let Ok(path) = std::env::var("CRITERION_BENCH_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let mut escaped = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => escaped.push_str("\\\""),
            '\\' => escaped.push_str("\\\\"),
            c if (c as u32) < 0x20 => escaped.push_str(&format!("\\u{:04x}", c as u32)),
            c => escaped.push(c),
        }
    }
    let line = format!(
        "{{\"name\": \"{escaped}\", \"median_s\": {median:e}, \"mean_s\": {mean:e}, \"min_s\": {min:e}}}\n"
    );
    let written = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .and_then(|mut f| f.write_all(line.as_bytes()));
    if let Err(e) = written {
        eprintln!("criterion shim: cannot append to {path}: {e}");
    }
}

fn run_bench(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let quick = quick_mode();
    let target = if quick {
        SAMPLE_TARGET_QUICK
    } else {
        SAMPLE_TARGET
    };
    let sample_size = if quick {
        sample_size.min(QUICK_SAMPLES)
    } else {
        sample_size
    };
    // Calibration: find an iteration count whose sample time is near the
    // target (also serves as warmup).
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= target || iters >= 1 << 20 {
            break;
        }
        // Grow quickly while samples are far below target.
        let grow = if b.elapsed < target / 10 { 8 } else { 2 };
        iters = iters.saturating_mul(grow);
    }

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).expect("durations are finite"));
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    let min = samples[0];
    eprintln!(
        "{label:<44} median {} mean {} min {} ({} samples x {} iters)",
        fmt_time(median),
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
        iters,
    );
    emit_json(label, median, mean, min);
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:9.3} s ")
    } else if secs >= 1e-3 {
        format!("{:9.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:9.3} µs", secs * 1e6)
    } else {
        format!("{:9.1} ns", secs * 1e9)
    }
}

/// Declares a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declares `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_function("noop", |b| {
            ran += 1;
            b.iter(|| black_box(1 + 1))
        });
        group.finish();
        assert!(ran >= 3, "calibration + samples must invoke the closure");
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("flood", 128);
        assert_eq!(id.label, "flood/128");
        assert_eq!(BenchmarkId::from_parameter(7).label, "7");
    }
}
