//! Offline compatibility shim for the subset of the `rayon` API the
//! `congest` round engine and the `expander` recursion scheduler use.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! stands in for the real `rayon`. It implements *indexed* parallel
//! iterators over slices — `par_iter` / `par_iter_mut`, plus the `zip`,
//! `enumerate` and `for_each` combinators — by splitting the index space
//! into contiguous chunks and driving each chunk on a scoped OS thread
//! (`std::thread::scope`). That is exactly the execution shape rayon's
//! work-stealing pool converges to for uniform per-item work, which is the
//! engine's profile (every vertex does O(deg) work per round).
//!
//! It also provides [`scope`]/[`Scope::spawn`] for *coarse-grained* tasks
//! (the recursion scheduler spawns a handful of worker tasks per level,
//! each pulling jobs from a shared queue). Two honest deviations from
//! rayon: each spawned task gets its own scoped OS thread instead of a
//! pooled worker (fine at task counts ≲ dozens, which is the only way the
//! workspace uses it — [`scope`] caps concurrency at [`MAX_SCOPED_TASKS`]
//! and queues the rest), and the task closure takes no `&Scope` argument
//! (swap in real rayon by writing `|_| …`; nested spawn is unused here).
//!
//! Thread count: `RAYON_NUM_THREADS` if set, else
//! `std::thread::available_parallelism()`. With one thread the drivers run
//! inline on the caller's thread — zero spawn overhead — which keeps the
//! parallel engine within noise of the sequential engine on single-core
//! hosts.
//!
//! Swap the `rayon` entry in the root `[workspace.dependencies]` for the
//! real crate to drop this shim; no client code changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::{Mutex, OnceLock};

/// Number of worker threads the shim will use for `for_each`.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
            if let Ok(n) = v.trim().parse::<usize>() {
                if n >= 1 {
                    return n;
                }
            }
        }
        std::thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// An indexed parallel iterator: a splittable, exactly-sized sequence.
///
/// Mirrors the shape of rayon's `IndexedParallelIterator`: combinators
/// carry slices (or other combinators) and only the terminal `for_each`
/// runs anything, after recursively splitting the index space across
/// threads.
pub trait IndexedParallelIterator: Sized + Send {
    /// Item handed to the consumer closure.
    type Item: Send;
    /// Sequential iterator driving one contiguous chunk.
    type Seq: Iterator<Item = Self::Item>;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// Whether the sequence is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);

    /// The sequential driver for this (chunk of the) iterator.
    fn into_seq(self) -> Self::Seq;

    /// Pairs this sequence with another, item by item.
    ///
    /// Lengths must match (the engine always zips same-length vertex
    /// arrays); this is checked and panics on mismatch, like rayon's
    /// `zip_eq`.
    fn zip<B: IndexedParallelIterator>(self, other: B) -> Zip<Self, B> {
        assert_eq!(self.len(), other.len(), "zip: length mismatch");
        Zip { a: self, b: other }
    }

    /// Attaches the item index.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            inner: self,
            base: 0,
        }
    }

    /// Consumes the sequence, invoking `f` on every item, in parallel
    /// across contiguous chunks.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let threads = current_num_threads();
        let len = self.len();
        if threads <= 1 || len <= 1 {
            self.into_seq().for_each(&f);
            return;
        }
        // Contiguous chunking; the last chunk absorbs the remainder.
        let chunk = len.div_ceil(threads);
        std::thread::scope(|scope| {
            let mut rest = self;
            let mut remaining = len;
            let fref = &f;
            while remaining > chunk {
                let (head, tail) = rest.split_at(chunk);
                rest = tail;
                remaining -= chunk;
                scope.spawn(move || head.into_seq().for_each(fref));
            }
            // Drive the final chunk on the calling thread.
            rest.into_seq().for_each(fref);
        });
    }
}

/// Hard cap on concurrently running scoped tasks: a [`scope`] never holds
/// more OS threads than this; excess tasks queue behind the running ones.
pub const MAX_SCOPED_TASKS: usize = 64;

/// A fork-join task scope created by [`scope`]. Tasks spawned into it are
/// guaranteed to have completed by the time [`scope`] returns.
pub struct Scope<'env> {
    tasks: RefCell<Vec<Box<dyn FnOnce() + Send + 'env>>>,
}

impl<'env> Scope<'env> {
    /// Registers `body` to run on this scope. Unlike real rayon the body
    /// takes no `&Scope` argument (nested spawn is unused in this
    /// workspace) and execution is deferred until the [`scope`] closure
    /// returns — equivalent for independent tasks, which is the only
    /// shape the workspace spawns.
    pub fn spawn<F>(&self, body: F)
    where
        F: FnOnce() + Send + 'env,
    {
        self.tasks.borrow_mut().push(Box::new(body));
    }
}

/// Creates a task scope: `f` spawns tasks via [`Scope::spawn`]; all of
/// them have run to completion when `scope` returns.
///
/// A single task runs inline on the caller's thread (zero spawn
/// overhead); otherwise each task gets a scoped OS thread, at most
/// [`MAX_SCOPED_TASKS`] concurrently (excess tasks are pulled from a
/// shared queue as workers free up).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'env>) -> R,
{
    let s = Scope {
        tasks: RefCell::new(Vec::new()),
    };
    let result = f(&s);
    let tasks = s.tasks.into_inner();
    match tasks.len() {
        0 => {}
        1 => {
            for t in tasks {
                t();
            }
        }
        len => {
            let workers = len.min(MAX_SCOPED_TASKS);
            let queue: Mutex<VecDeque<Box<dyn FnOnce() + Send + 'env>>> = Mutex::new(tasks.into());
            std::thread::scope(|ts| {
                for _ in 0..workers {
                    ts.spawn(|| loop {
                        let task = queue.lock().expect("scope queue poisoned").pop_front();
                        match task {
                            Some(t) => t(),
                            None => break,
                        }
                    });
                }
            });
        }
    }
    result
}

/// Parallel iterator over `&mut [T]`. See [`prelude::ParallelSliceMut`].
pub struct ParIterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> IndexedParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;
    type Seq = std::slice::IterMut<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at_mut(index);
        (ParIterMut { slice: a }, ParIterMut { slice: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter_mut()
    }
}

/// Parallel iterator over `&[T]`. See [`prelude::ParallelSlice`].
pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> IndexedParallelIterator for ParIter<'a, T> {
    type Item = &'a T;
    type Seq = std::slice::Iter<'a, T>;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.slice.split_at(index);
        (ParIter { slice: a }, ParIter { slice: b })
    }

    fn into_seq(self) -> Self::Seq {
        self.slice.iter()
    }
}

/// Item-wise pairing of two indexed parallel iterators.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: IndexedParallelIterator, B: IndexedParallelIterator> IndexedParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);
    type Seq = std::iter::Zip<A::Seq, B::Seq>;

    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }

    fn into_seq(self) -> Self::Seq {
        self.a.into_seq().zip(self.b.into_seq())
    }
}

/// Index-attaching combinator; the base offset survives splitting.
pub struct Enumerate<A> {
    inner: A,
    base: usize,
}

impl<A: IndexedParallelIterator> IndexedParallelIterator for Enumerate<A> {
    type Item = (usize, A::Item);
    type Seq = EnumerateSeq<A::Seq>;

    fn len(&self) -> usize {
        self.inner.len()
    }

    fn split_at(self, index: usize) -> (Self, Self) {
        let (a, b) = self.inner.split_at(index);
        (
            Enumerate {
                inner: a,
                base: self.base,
            },
            Enumerate {
                inner: b,
                base: self.base + index,
            },
        )
    }

    fn into_seq(self) -> Self::Seq {
        EnumerateSeq {
            inner: self.inner.into_seq(),
            next: self.base,
        }
    }
}

/// Sequential driver of [`Enumerate`]: `std::iter::Enumerate` with a
/// non-zero starting index (and no per-item indirection).
pub struct EnumerateSeq<I> {
    inner: I,
    next: usize,
}

impl<I: Iterator> Iterator for EnumerateSeq<I> {
    type Item = (usize, I::Item);

    #[inline]
    fn next(&mut self) -> Option<Self::Item> {
        let x = self.inner.next()?;
        let i = self.next;
        self.next += 1;
        Some((i, x))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.inner.size_hint()
    }
}

/// Entry-point traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use super::IndexedParallelIterator;
    use super::{ParIter, ParIterMut};

    /// Adds `par_iter_mut` to mutable slices.
    pub trait ParallelSliceMut<T: Send> {
        /// Parallel iterator over mutable references.
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T>;
    }

    impl<T: Send> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> ParIterMut<'_, T> {
            ParIterMut { slice: self }
        }
    }

    /// Adds `par_iter` to shared slices.
    pub trait ParallelSlice<T: Sync> {
        /// Parallel iterator over shared references.
        fn par_iter(&self) -> ParIter<'_, T>;
    }

    impl<T: Sync> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> ParIter<'_, T> {
            ParIter { slice: self }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn for_each_visits_every_item_once() {
        let mut v = vec![0u64; 10_000];
        v.par_iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = i as u64);
        assert!(v.iter().enumerate().all(|(i, &x)| x == i as u64));
    }

    #[test]
    fn zip_pairs_matching_indices() {
        let mut a = vec![0usize; 5000];
        let mut b: Vec<usize> = (0..5000).collect();
        a.par_iter_mut()
            .zip(b.par_iter_mut())
            .enumerate()
            .for_each(|(i, (x, y))| {
                assert_eq!(*y, i);
                *x = *y * 2;
            });
        assert!(a.iter().enumerate().all(|(i, &x)| x == 2 * i));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn zip_rejects_mismatched_lengths() {
        let mut a = [0u8; 3];
        let mut b = [0u8; 4];
        a.par_iter_mut().zip(b.par_iter_mut()).for_each(|_| {});
    }

    #[test]
    fn empty_and_single_item_sequences() {
        let mut v: Vec<u8> = Vec::new();
        v.par_iter_mut().for_each(|_| unreachable!());
        let mut one = [7u8];
        one.par_iter_mut().for_each(|x| *x += 1);
        assert_eq!(one[0], 8);
    }

    #[test]
    fn scope_runs_every_task_before_returning() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..10 {
                s.spawn(|| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), 10);
    }

    #[test]
    fn scope_tasks_run_concurrently() {
        // Two tasks rendezvous through a barrier: only possible if they
        // run on distinct threads at the same time.
        let barrier = std::sync::Barrier::new(2);
        let met = std::sync::atomic::AtomicBool::new(false);
        super::scope(|s| {
            for _ in 0..2 {
                s.spawn(|| {
                    barrier.wait();
                    met.store(true, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert!(met.into_inner());
    }

    #[test]
    fn scope_returns_closure_value_and_handles_empty_and_single() {
        assert_eq!(super::scope(|_| 7), 7);
        // A single task runs inline on the caller's thread.
        let caller = std::thread::current().id();
        let mut ran_on = None;
        super::scope(|s| {
            s.spawn(|| ran_on = Some(std::thread::current().id()));
        });
        assert_eq!(ran_on, Some(caller));
    }

    #[test]
    fn scope_survives_more_tasks_than_cap() {
        let counter = std::sync::atomic::AtomicUsize::new(0);
        let tasks = super::MAX_SCOPED_TASKS + 9;
        super::scope(|s| {
            for _ in 0..tasks {
                s.spawn(|| {
                    counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.into_inner(), tasks);
    }

    #[test]
    fn shared_par_iter_reads() {
        let v: Vec<usize> = (0..1000).collect();
        let sum = std::sync::atomic::AtomicUsize::new(0);
        v.par_iter().for_each(|&x| {
            sum.fetch_add(x, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 999 * 1000 / 2);
    }
}
