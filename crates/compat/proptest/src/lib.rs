//! Offline compatibility shim for the subset of the `proptest` API this
//! workspace's property tests use.
//!
//! The build environment has no access to crates.io, so this in-tree crate
//! stands in for the real `proptest`. It provides the [`Strategy`] trait
//! (`prop_map`, ranges, tuples, `any`, `collection::vec` with fixed or
//! ranged lengths, [`Just`], [`prop_oneof!`] unions), the [`proptest!`]
//! macro, the `prop_assert*` / `prop_assume!` macros and a deterministic
//! case runner. Two honest simplifications versus upstream:
//! failing inputs are **not shrunk** (the failing value and its seed are
//! printed instead), and there is no persistent failure database.
//!
//! Swap the `proptest` entry in the root `[workspace.dependencies]` for
//! the real crate to drop this shim; no client code changes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Range;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Erases the strategy's type, for heterogeneous unions
    /// ([`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.sample(rng)))
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn sample(&self, rng: &mut StdRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A type-erased strategy, produced by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut StdRng) -> T>);

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        (self.0)(rng)
    }
}

/// Always produces a clone of the given value (upstream
/// `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased arms; built by [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// A union over `arms` (picked uniformly; upstream's per-arm weights
    /// are not supported).
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union(arms)
    }
}

impl<T: Debug> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut StdRng) -> T {
        let arm = rand::Rng::random_range(rng, 0..self.0.len());
        self.0[arm].sample(rng)
    }
}

/// Uniform choice among strategies producing the same value type
/// (upstream `prop_oneof!`, without per-arm weights).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// Strategy for "any value of `T`". Created by [`any`].
pub struct Any<T>(PhantomData<T>);

/// Returns the default strategy for `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(PhantomData)
}

macro_rules! impl_any_uniform {
    ($($ty:ty),*) => {$(
        impl Strategy for Any<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rand::Rng::random(rng)
            }
        }
    )*};
}

impl_any_uniform!(bool, u8, u16, u32, u64, usize, f64);

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn sample(&self, rng: &mut StdRng) -> $ty {
                rand::Rng::random_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut StdRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Collection strategies.
pub mod collection {
    use super::Strategy;
    use std::ops::Range;

    /// A vector length specification: a fixed `usize` or a
    /// `Range<usize>` (upstream's `SizeRange`, reduced to the two forms
    /// this workspace uses).
    pub trait VecLen {
        /// Draws one concrete length.
        fn draw(&self, rng: &mut rand::rngs::StdRng) -> usize;
    }

    impl VecLen for usize {
        fn draw(&self, _rng: &mut rand::rngs::StdRng) -> usize {
            *self
        }
    }

    impl VecLen for Range<usize> {
        fn draw(&self, rng: &mut rand::rngs::StdRng) -> usize {
            rand::Rng::random_range(rng, self.clone())
        }
    }

    /// Strategy for vectors. Created by [`vec()`].
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    /// A vector drawn from `element`, with `len` elements (`usize`) or a
    /// length drawn from a `Range<usize>`.
    pub fn vec<S: Strategy, L: VecLen>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }

    impl<S: Strategy, L: VecLen> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut rand::rngs::StdRng) -> Self::Value {
            let n = self.len.draw(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Case runner and its configuration.
pub mod test_runner {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (only `cases` is honored by the shim).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.trim().parse().ok())
                .unwrap_or(256);
            ProptestConfig { cases }
        }
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions did not hold; draw a fresh input.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    /// Result of one test case.
    pub type TestCaseResult = Result<(), TestCaseError>;

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `test` on `cfg.cases` inputs drawn from `strategy`.
    ///
    /// Inputs are derived deterministically from the test name and the
    /// attempt index, so failures are reproducible run to run. Rejected
    /// cases (via `prop_assume!`) are redrawn, with a global cap to keep
    /// vacuous tests from passing silently.
    ///
    /// # Panics
    ///
    /// Panics on the first failing case, printing the input and its seed;
    /// panics if too many cases are rejected.
    pub fn run<S: Strategy>(
        name: &str,
        cfg: ProptestConfig,
        strategy: S,
        test: impl Fn(S::Value) -> TestCaseResult,
    ) {
        let base = fnv1a(name);
        let max_rejects = cfg.cases as u64 * 10 + 256;
        let mut rejects = 0u64;
        let mut attempt = 0u64;
        let mut passed = 0u32;
        while passed < cfg.cases {
            let seed = base ^ attempt.wrapping_mul(0x9E3779B97F4A7C15);
            attempt += 1;
            let mut rng = StdRng::seed_from_u64(seed);
            let value = strategy.sample(&mut rng);
            let debugged = format!("{value:?}");
            match test(value) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(why)) => {
                    rejects += 1;
                    assert!(
                        rejects <= max_rejects,
                        "{name}: too many rejected cases ({rejects}); last: {why}"
                    );
                }
                Err(TestCaseError::Fail(why)) => {
                    panic!(
                        "{name}: case {passed} failed (seed {seed:#x}):\n  {why}\n  input: {debugged}"
                    );
                }
            }
        }
    }
}

/// One-stop imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{prop_oneof, Any, BoxedStrategy, Just, Strategy, Union};
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Fails the current case unless the two values are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Fails the current case if the two values are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l != r, "assertion failed: {:?} != {:?}", l, r);
    }};
}

/// Rejects the current case (redrawn, not failed) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

/// Declares property tests: an optional `#![proptest_config(..)]` header
/// followed by `#[test] fn name(binding in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            cfg = ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::test_runner::run(
                stringify!($name),
                $cfg,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
            );
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_any_sample_within_bounds() {
        let mut rng = rand::SeedableRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = (5usize..10).sample(&mut rng);
            assert!((5..10).contains(&x));
            let f = (0.25f64..0.5).sample(&mut rng);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn prop_map_and_tuples_compose() {
        let strat = (1usize..4, any::<bool>()).prop_map(|(n, b)| vec![b; n]);
        let mut rng = rand::SeedableRng::seed_from_u64(2);
        for _ in 0..100 {
            let v = strat.sample(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn runner_executes_and_assumes(n in 0usize..100, flag in any::<bool>()) {
            prop_assume!(n > 0 || flag);
            prop_assert!(n < 100);
            prop_assert_eq!(n + 1, 1 + n);
            prop_assert_ne!(n, n + 1);
        }
    }

    #[test]
    #[should_panic(expected = "failing_case")]
    fn failures_panic_with_input() {
        crate::test_runner::run(
            "failing_case",
            ProptestConfig::with_cases(10),
            (0usize..4,),
            |(n,)| {
                prop_assert!(n < 3, "n too big: {}", n);
                Ok(())
            },
        );
    }

    #[test]
    fn vec_strategy_has_fixed_len() {
        let strat = crate::collection::vec(any::<bool>(), 7);
        let mut rng = rand::SeedableRng::seed_from_u64(3);
        assert_eq!(strat.sample(&mut rng).len(), 7);
    }

    #[test]
    fn vec_strategy_draws_ranged_len() {
        let strat = crate::collection::vec(any::<u8>(), 2usize..5);
        let mut rng = rand::SeedableRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!((2..5).contains(&strat.sample(&mut rng).len()));
        }
    }

    #[test]
    fn oneof_picks_every_arm_and_just_is_constant() {
        let strat = prop_oneof![Just(1u32), Just(2u32), 10u32..20];
        let mut rng = rand::SeedableRng::seed_from_u64(5);
        let mut seen = [false; 3];
        for _ in 0..200 {
            match strat.sample(&mut rng) {
                1 => seen[0] = true,
                2 => seen[1] = true,
                x if (10..20).contains(&x) => seen[2] = true,
                other => panic!("impossible draw {other}"),
            }
        }
        assert_eq!(seen, [true; 3]);
    }
}
