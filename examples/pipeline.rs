//! The end-to-end pipeline on a clustered graph: decompose, route, list
//! triangles on the parallel round engine, recurse — then read the
//! per-phase budgets the paper bounds.
//!
//! Run with: `cargo run --release --example pipeline`

use expander_repro::prelude::*;

fn main() -> Result<(), GraphError> {
    // A ring of cliques plus one adversarial triangle spanning three
    // cliques: the planted clusters are found at level 0; the spanning
    // triangle only becomes intra-cluster deeper in the recursion.
    let (base, _) = gen::ring_of_cliques(6, 8)?;
    let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
    edges.extend([(2, 13), (13, 29), (2, 29)]);
    let g = Graph::from_edges(48, edges)?;

    let report = enumerate_via_decomposition(&g, &PipelineParams::default());
    assert_eq!(report.count(), count_triangles(&g), "pipeline is exact");

    println!(
        "n = {}, m = {}: {} triangles in {} total rounds",
        report.n,
        report.m,
        report.count(),
        report.total_rounds()
    );
    println!(
        "witness sample ({} of {}): {:?}",
        report.witnesses.len(),
        report.count(),
        &report.witnesses[..report.witnesses.len().min(4)]
    );
    println!("\nper-level budgets:");
    for level in &report.levels {
        println!(
            "  level {}: m = {:4}  clusters = {:2}  phi = {:.2e}  decomp = {:6} rounds  \
             route = {:5} rounds ({} queries)  engine = {:3} rounds / {:5} msgs  (+{} triangles)",
            level.depth,
            level.m,
            level.clusters,
            level.phi,
            level.decomposition_rounds,
            level.routing_rounds,
            level.routing_queries,
            level.engine.rounds,
            level.engine.messages,
            level.triangles_found,
        );
    }
    println!("\nengine-measured phases:");
    for (phase, traffic) in report.phases.iter() {
        println!("  {phase}: {traffic}");
    }
    println!(
        "\nheaviest routing instance: {} queries vs paper budget Õ(n^1/3) ≈ {:.0}",
        report.max_routing_queries(),
        report.paper_query_budget()
    );
    Ok(())
}
