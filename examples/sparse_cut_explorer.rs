//! Sparse-cut explorer: Theorem 3's *nearly most balanced* guarantee.
//!
//! Builds dumbbells with planted cuts of varying balance `b` and checks
//! that the returned cut achieves balance `≥ min(b/2, 1/48)` with
//! conductance within the promised `h(φ)` bound — the property that
//! distinguishes this algorithm from all previous distributed sparse-cut
//! algorithms (whose cuts could be arbitrarily unbalanced).
//!
//! Run with: `cargo run --release --example sparse_cut_explorer`

use expander_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!(
        "{:>12} {:>10} {:>10} {:>12} {:>12} {:>10}",
        "shape", "planted b", "floor", "achieved b", "Φ(C)", "promise"
    );
    for (left, right) in [(16usize, 16usize), (24, 10), (30, 6), (34, 4)] {
        let (g, left_set) = gen::dumbbell(left, right, 2)?;
        // The planted cut separates the right clique (smaller volume side).
        let planted = g.balance(&left_set)?;
        let floor = (planted / 2.0).min(1.0 / 48.0);
        let out = nearly_most_balanced_sparse_cut(&g, 0.004, ParamMode::Practical, 4, 11);
        match &out.cut {
            Some(cut) => {
                let ok_balance = cut.balance() >= floor - 1e-9;
                let promise = out.promised_conductance(g.n());
                let ok_cond = cut.conductance() <= promise + 1e-9;
                println!(
                    "{:>9}+{:<2} {:>10.4} {:>10.4} {:>12.4} {:>12.4} {:>10.4}  {}",
                    format!("K{left}"),
                    format!("K{right}"),
                    planted,
                    floor,
                    cut.balance(),
                    cut.conductance(),
                    promise,
                    if ok_balance && ok_cond {
                        "ok"
                    } else {
                        "VIOLATION"
                    }
                );
            }
            None => println!(
                "{:>9}+{:<2} {:>10.4}  — no cut found (graph certified as expander)",
                format!("K{left}"),
                format!("K{right}"),
                planted
            ),
        }
    }

    // Control: a genuine expander should yield no cut (or only a cut
    // within the conductance promise).
    let expander = gen::random_regular(64, 8, 3)?;
    let out = nearly_most_balanced_sparse_cut(&expander, 0.004, ParamMode::Practical, 4, 5);
    match &out.cut {
        None => println!("\ncontrol (8-regular expander): correctly certified, no cut"),
        Some(c) => println!(
            "\ncontrol (8-regular expander): returned cut Φ = {:.4} (promise {:.4})",
            c.conductance(),
            out.promised_conductance(expander.n())
        ),
    }
    Ok(())
}
