//! Triangle census: the paper's headline result in action.
//!
//! Enumerates all triangles of a "social network"-style graph three ways —
//! centralized ground truth, the CONGEST algorithm of Theorem 2, and the
//! Dolev–Lenzen–Peled CONGESTED-CLIQUE baseline — and compares round
//! counts, reproducing the claim that CONGEST matches CONGESTED-CLIQUE up
//! to polylogarithmic factors.
//!
//! Run with: `cargo run --release --example triangle_census`

use expander_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Two overlapping communities plus background noise: plenty of
    // triangles inside communities, a few across.
    let pp = gen::planted_partition(&[40, 40, 40], 0.35, 0.03, 9)?;
    let g = &pp.graph;
    println!("graph: n = {}, m = {}", g.n(), g.m());

    // Ground truth.
    let truth = enumerate_triangles(g);
    println!("ground truth: {} triangles", truth.len());

    // Theorem 2: CONGEST via expander decomposition + expander routing.
    let congest_out = congest_enumerate(g, &TriangleConfig::default());
    assert_eq!(
        congest_out.triangles, truth,
        "CONGEST listing must be complete"
    );
    println!(
        "CONGEST:  {} triangles in {} charged rounds ({} recursion levels)",
        congest_out.triangles.len(),
        congest_out.rounds,
        congest_out.levels.len()
    );
    for (i, l) in congest_out.levels.iter().enumerate() {
        println!(
            "  level {i}: m = {:>6}, clusters = {:>3}, decomp = {:>10} rounds, \
             routing build = {:>8}, listing = {:>8} ({} queries)",
            l.m,
            l.clusters,
            l.decomposition_rounds,
            l.routing_build_rounds,
            l.listing_rounds,
            l.max_queries
        );
    }

    // Baseline: deterministic CONGESTED-CLIQUE (Dolev–Lenzen–Peled).
    let clique_out = clique_enumerate(g);
    assert_eq!(clique_out.triangles, truth, "DLP listing must be complete");
    println!(
        "CLIQUE:   {} triangles in {} rounds (g = {} groups, max receive load {})",
        clique_out.triangles.len(),
        clique_out.rounds,
        clique_out.groups,
        clique_out.max_receive_load
    );

    println!(
        "\nCONGEST/CLIQUE round ratio: {:.1}x — the polylog gap of Theorem 2",
        congest_out.rounds as f64 / clique_out.rounds.max(1) as f64
    );
    Ok(())
}
