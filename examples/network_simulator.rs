//! Raw CONGEST simulation: run real message-passing programs on a network
//! and watch the model's constraints at work.
//!
//! Computes BFS distances and a degree-sum aggregation on a torus-like
//! grid, cross-checks against centralized algorithms, and reports the
//! bandwidth bookkeeping the simulator enforces.
//!
//! Run with: `cargo run --example network_simulator`

use congest::algorithms::{aggregate_sum, broadcast_value, distributed_bfs};
use expander_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let g = gen::grid(12, 12)?;
    let net = Network::new(&g);
    println!(
        "network: n = {}, m = {}, bandwidth = {} bits/edge/round",
        g.n(),
        g.m(),
        net.bandwidth_bits()
    );

    // Distributed BFS vs centralized BFS.
    let (report, dist) = distributed_bfs(&g, 0, 10_000)?;
    let want = traversal::bfs_distances(&g, 0);
    assert_eq!(dist, want, "distributed BFS must agree with centralized");
    println!(
        "BFS from corner: {} (eccentricity = {})",
        report,
        traversal::eccentricity(&g, 0)?
    );

    // Broadcast.
    let (report, got) = broadcast_value(&g, 0, 0xBEEF, 10_000)?;
    assert!(got.iter().all(|&x| x == Some(0xBEEF)));
    println!("broadcast:       {report}");

    // Convergecast: total volume (sum of degrees) gathered at the root.
    let (report, total) = aggregate_sum(&g, 0, |v| g.degree(v) as u64, 10_000)?;
    assert_eq!(total as usize, g.total_volume());
    println!("aggregation:     {report} -> total volume {total}");

    // The same aggregation on a long path takes Θ(n) rounds — diameter is
    // the price of locality.
    let path = gen::path(144)?;
    let (slow, _) = aggregate_sum(&path, 0, |_| 1, 100_000)?;
    println!(
        "same aggregation on P144: {} rounds (vs {} on the grid — diameter rules)",
        slow.rounds, report.rounds
    );

    // The engine can step vertices in parallel; results are bit-identical
    // to sequential execution (rounds, messages, bits, and every program
    // state), so the mode is purely a wall-clock knob.
    let (big, _) = gen::ring_of_cliques(50, 20)?;
    let seq = Network::new(&big).run(|_| CountNeighbors::default(), 100)?;
    let par = Network::new(&big)
        .with_exec_mode(congest::ExecMode::Parallel)
        .run(|_| CountNeighbors::default(), 100)?;
    assert_eq!(seq, par, "execution modes must agree exactly");
    println!("parallel engine: {par} (identical to sequential run)");
    Ok(())
}

/// Toy program for the exec-mode demo: everyone announces, counts replies.
#[derive(Default)]
struct CountNeighbors {
    heard: u32,
    done: bool,
}

impl VertexProgram for CountNeighbors {
    type Msg = u32;
    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        ctx.broadcast(ctx.me());
    }
    fn round(&mut self, _ctx: &mut Ctx<'_, u32>, inbox: &[(graph::VertexId, u32)]) {
        self.heard += inbox.len() as u32;
        self.done = true;
    }
    fn halted(&self) -> bool {
        self.done
    }
}
