//! Quickstart: decompose a clustered graph, verify the certificate, and
//! print the round-ledger breakdown.
//!
//! Run with: `cargo run --example quickstart`

use expander_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A planted-partition graph: four communities of 24 vertices, dense
    // inside (p = 0.5), sparse across (p = 0.005).
    let pp = gen::planted_partition(&[24, 24, 24, 24], 0.5, 0.005, 42)?;
    let g = &pp.graph;
    println!(
        "input: n = {}, m = {}, planted communities = {}",
        g.n(),
        g.m(),
        pp.blocks.len()
    );

    // Theorem 1: (ε, φ)-expander decomposition.
    let result = ExpanderDecomposition::builder()
        .epsilon(0.25)
        .k(2)
        .seed(7)
        .build()
        .run(g)?;

    println!(
        "decomposition: {} parts, inter-cluster fraction {:.4} (budget ε = 0.25)",
        result.parts.len(),
        result.inter_cluster_fraction()
    );
    let [r1, r2, r3] = result.removed_by_tag();
    println!("  removed edges: Remove-1 (LDD) = {r1}, Remove-2 (sparse cut) = {r2}, Remove-3 (peel) = {r3}");

    // Certificate: partition validity, edge budget, per-part conductance.
    let report = verify_decomposition(g, &result);
    println!(
        "certificate: partition = {}, edge budget = {}, min certified Φ = {:.4}",
        report.is_partition,
        report.edge_budget_ok(),
        report.min_certified_conductance()
    );

    // How large parts map onto planted blocks.
    for (i, part) in result.parts.iter().enumerate().filter(|(_, p)| p.len() > 2) {
        let best_overlap = pp
            .blocks
            .iter()
            .map(|b| b.intersection(part).len())
            .max()
            .unwrap_or(0);
        println!(
            "  part {i}: {} vertices, {best_overlap} in its best-matching planted block",
            part.len()
        );
    }

    // The measured CONGEST round charges, by category.
    println!("\nround ledger:\n{}", result.ledger);
    Ok(())
}
