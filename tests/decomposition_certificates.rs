//! End-to-end Theorem 1 certification across graph families and seeds:
//! every decomposition must be a partition, respect the ε budget, and have
//! every part certified as a φ-expander.

use expander_repro::prelude::*;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("ring_of_cliques", gen::ring_of_cliques(6, 8).unwrap().0),
        ("barbell", gen::barbell(12).unwrap().0),
        (
            "sbm2",
            gen::planted_partition(&[30, 30], 0.5, 0.01, 5)
                .unwrap()
                .graph,
        ),
        (
            "sbm3",
            gen::planted_partition(&[20, 20, 20], 0.5, 0.01, 9)
                .unwrap()
                .graph,
        ),
        ("gnp_dense", gen::gnp(60, 0.3, 7).unwrap()),
        ("complete", gen::complete(32).unwrap()),
        ("grid", gen::grid(8, 8).unwrap()),
        ("hypercube", gen::hypercube(6).unwrap()),
        ("regular", gen::random_regular(64, 6, 3).unwrap()),
        ("chung_lu", gen::chung_lu(80, 2.5, 8.0, 11).unwrap()),
    ]
}

#[test]
fn certificates_hold_across_families() {
    for (name, g) in families() {
        for seed in [1u64, 2] {
            let eps = 0.3;
            let result = ExpanderDecomposition::builder()
                .epsilon(eps)
                .k(2)
                .seed(seed)
                .build()
                .run(&g)
                .unwrap();
            let report = verify_decomposition(&g, &result);
            assert!(report.is_partition, "{name}/{seed}: not a partition");
            assert!(
                report.edge_budget_ok(),
                "{name}/{seed}: removed fraction {} > ε {eps}",
                report.inter_cluster_fraction
            );
            assert!(
                report.conductance_ok(),
                "{name}/{seed}: min certified Φ {} below promised {}",
                report.min_certified_conductance(),
                report.phi
            );
        }
    }
}

#[test]
fn per_tag_budgets_hold() {
    for (name, g) in families() {
        let eps = 0.3;
        let result = ExpanderDecomposition::builder()
            .epsilon(eps)
            .seed(4)
            .build()
            .run(&g)
            .unwrap();
        let budget = (eps / 3.0) * g.m() as f64;
        for (tag, count) in ["Remove-1", "Remove-2", "Remove-3"]
            .iter()
            .zip(result.removed_by_tag())
        {
            assert!(
                count as f64 <= budget + 1e-9,
                "{name}: {tag} removed {count} > per-tag budget {budget}"
            );
        }
    }
}

#[test]
fn expanders_survive_intact() {
    // Graphs with conductance far above the detection bar must come back
    // as a single part with nothing removed.
    for (name, g) in [
        ("complete", gen::complete(24).unwrap()),
        ("regular8", gen::random_regular(48, 8, 2).unwrap()),
    ] {
        let result = ExpanderDecomposition::builder()
            .epsilon(0.2)
            .seed(6)
            .build()
            .run(&g)
            .unwrap();
        assert_eq!(result.parts.len(), 1, "{name} should stay whole");
        assert!(result.removed_edges.is_empty(), "{name} lost edges");
    }
}

#[test]
fn ring_parts_align_with_cliques() {
    let (g, cliques) = gen::ring_of_cliques(8, 6).unwrap();
    let result = ExpanderDecomposition::builder()
        .epsilon(0.3)
        .seed(10)
        .build()
        .run(&g)
        .unwrap();
    // Every multi-vertex part should sit inside the union of at most a few
    // cliques; count parts fully matching one planted clique.
    let full_matches = result
        .parts
        .iter()
        .filter(|p| {
            cliques
                .iter()
                .any(|c| c.intersection(p).len() == c.len() && p.len() == c.len())
        })
        .count();
    assert!(
        full_matches >= 4,
        "only {full_matches} parts matched planted cliques exactly"
    );
}

#[test]
fn k_tradeoff_direction() {
    // Larger k must never increase the promised conductance target and the
    // run schedule length grows with k.
    let pp = gen::planted_partition(&[40, 40], 0.4, 0.02, 3).unwrap();
    let r1 = ExpanderDecomposition::builder()
        .k(1)
        .seed(2)
        .build()
        .run(&pp.graph)
        .unwrap();
    let r3 = ExpanderDecomposition::builder()
        .k(3)
        .seed(2)
        .build()
        .run(&pp.graph)
        .unwrap();
    assert!(r3.phi <= r1.phi);
    assert_eq!(r1.params.run_schedule.len(), 2);
    assert_eq!(r3.params.run_schedule.len(), 4);
}

#[test]
fn degree_preservation_through_removals() {
    // The loop-compensation invariant: rebuilding the working graph from
    // the removal record preserves every degree.
    let (g, _) = gen::ring_of_cliques(5, 6).unwrap();
    let result = ExpanderDecomposition::builder()
        .epsilon(0.3)
        .seed(8)
        .build()
        .run(&g)
        .unwrap();
    let stripped = g.remove_edges(result.removed_edges.iter().map(|&(u, v, _)| (u, v)), true);
    for v in 0..g.n() as VertexId {
        assert_eq!(stripped.degree(v), g.degree(v), "degree of {v} changed");
    }
    assert_eq!(stripped.total_volume(), g.total_volume());
}
