//! Round-trip guarantees of the on-disk CSR ingestion tier (ISSUE 8,
//! DATASETS.md):
//!
//! * **bit identity** — edge list → on-disk CSR → mmap view → `Graph`
//!   reproduces the in-memory graph exactly, and re-converting produces
//!   byte-identical files (the format has one canonical encoding);
//! * **semantic identity** — triangle counts agree across the original
//!   edges, the converted file, and the Morton-relabeled file (Morton is
//!   an isomorphism: counts are invariant, labels are not);
//! * **no UB on bad input** — truncations, bit flips, and header forgeries
//!   produce typed [`storage::StorageError`]s, never a panic, on both the
//!   mmap and the forced-heap load path.

use expander_repro::prelude::*;
use proptest::prelude::*;
use std::fs;
use std::path::Path;
use storage::StorageError;

/// Writes `edges` as a plain-text edge list (with a vertex-count header
/// so isolated vertices survive) and converts it with `opts`.
fn convert_edges(
    dir: &Path,
    tag: &str,
    n: usize,
    edges: &[(u32, u32)],
    opts: &ConvertOptions,
) -> storage::Result<(storage::ConvertReport, std::path::PathBuf)> {
    let txt = dir.join(format!("{tag}.txt"));
    let mut body = format!("n {n}\n");
    for &(u, v) in edges {
        body.push_str(&format!("{u} {v}\n"));
    }
    fs::write(&txt, body).unwrap();
    let out = dir.join(format!("{tag}.csr"));
    convert_edge_list(&txt, &out, opts).map(|r| (r, out))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn edge_list_to_disk_to_graph_is_bit_identical(
        raw in proptest::collection::vec((0u32..48, 0u32..48), 60),
        n in 48usize..64,
    ) {
        let dir = storage::test_dir("prop-roundtrip");
        // Reference in-memory graph straight from the same edges. The
        // converter deduplicates, so deduplicate the reference too (the
        // multigraph path is covered by `dedup: false` below).
        let mut canon: Vec<(u32, u32)> = raw
            .iter()
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect();
        canon.sort_unstable();
        canon.dedup();
        let reference = Graph::from_edges(n, canon.clone()).unwrap();

        let (report, out) =
            convert_edges(&dir, "plain", n, &raw, &ConvertOptions::default()).unwrap();
        prop_assert_eq!(report.n, n);
        let file = CsrFile::open(&out).unwrap();
        let loaded = file.to_graph().unwrap();
        prop_assert_eq!(&loaded, &reference);
        // The zero-copy view agrees with the materialized graph row by row.
        let view = file.view();
        for v in 0..n as u32 {
            let row: Vec<u32> = view.neighbors(v).collect();
            prop_assert_eq!(row.as_slice(), reference.neighbors(v));
            prop_assert_eq!(view.degree(v), reference.degree(v));
        }
        // Triangle counts survive the disk trip.
        prop_assert_eq!(count_triangles(&loaded), count_triangles(&reference));
        // Same input, same bytes: the encoding is canonical.
        let (_, out2) =
            convert_edges(&dir, "plain2", n, &raw, &ConvertOptions::default()).unwrap();
        prop_assert_eq!(fs::read(&out).unwrap(), fs::read(&out2).unwrap());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn morton_relabeling_preserves_triangle_counts(
        raw in proptest::collection::vec((0u32..40, 0u32..40), 50),
    ) {
        let dir = storage::test_dir("prop-morton");
        let plain = ConvertOptions::default();
        let morton = ConvertOptions { morton: true, ..Default::default() };
        let (_, p) = convert_edges(&dir, "plain", 40, &raw, &plain).unwrap();
        let (_, m) = convert_edges(&dir, "morton", 40, &raw, &morton).unwrap();
        let gp = CsrFile::open(&p).unwrap().to_graph().unwrap();
        let gm = CsrFile::open(&m).unwrap().to_graph().unwrap();
        // Isomorphic relabeling: triangle count and degree multiset are
        // invariant; the labels themselves are not.
        prop_assert_eq!(count_triangles(&gp), count_triangles(&gm));
        let mut dp: Vec<usize> = (0..gp.n() as u32).map(|v| gp.degree(v)).collect();
        let mut dm: Vec<usize> = (0..gm.n() as u32).map(|v| gm.degree(v)).collect();
        dp.sort_unstable();
        dm.sort_unstable();
        prop_assert_eq!(dp, dm);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn multigraph_conversion_keeps_multiplicities(
        raw in proptest::collection::vec((0u32..20, 0u32..20), 30),
    ) {
        let dir = storage::test_dir("prop-multi");
        let opts = ConvertOptions { dedup: false, ..Default::default() };
        let (report, out) = convert_edges(&dir, "multi", 20, &raw, &opts).unwrap();
        let reference = Graph::from_edges(20, raw.clone()).unwrap();
        prop_assert_eq!(report.m as usize + report.self_loops as usize, raw.len());
        let loaded = CsrFile::open(&out).unwrap().to_graph().unwrap();
        prop_assert_eq!(loaded, reference);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncations_and_bit_flips_are_typed_errors(
        cut_frac in 0.0f64..1.0,
        flip_at in 0usize..4096,
        flip_bit in 0u32..8,
    ) {
        let dir = storage::test_dir("prop-corrupt");
        let g = gen::gnp(40, 0.2, 99).unwrap();
        let path = dir.join("g.csr");
        write_graph(&g, &path).unwrap();
        let pristine = fs::read(&path).unwrap();

        // Truncate anywhere: open must fail with a typed error, not panic.
        let cut = ((pristine.len() as f64) * cut_frac) as usize;
        if cut < pristine.len() {
            let t = dir.join("t.csr");
            fs::write(&t, &pristine[..cut]).unwrap();
            prop_assert!(CsrFile::open(&t).is_err(), "truncation at {} accepted", cut);
        }
        // Flip one bit anywhere: either the checksum catches it (section
        // bytes), or header validation does (magic, version, layout,
        // loop totals). The single exception is the two defined flag
        // bits — the header itself is not checksummed (DATASETS.md), and
        // FLAG_MORTON / FLAG_HAS_ARTIFACT with an empty artifact section
        // change metadata only, so those flips legally open.
        let at = flip_at % pristine.len();
        let flag_bit_flip = at == 12 && flip_bit < 2;
        if !flag_bit_flip {
            let mut bent = pristine.clone();
            bent[at] ^= 1 << flip_bit;
            let f = dir.join("f.csr");
            fs::write(&f, &bent).unwrap();
            prop_assert!(
                CsrFile::open(&f).is_err(),
                "bit flip at byte {} bit {} accepted",
                at,
                flip_bit
            );
        }
        fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn forced_heap_path_agrees_with_mmap() {
    let dir = storage::test_dir("heap-path");
    let g = gen::gnp(60, 0.15, 7).unwrap();
    let path = dir.join("g.csr");
    write_graph(&g, &path).unwrap();
    let mapped = CsrFile::open(&path).unwrap();
    assert!(mapped.is_mapped(), "mmap path should engage on unix");
    // The env-gated heap fallback must validate and decode identically.
    std::env::set_var("STORAGE_FORCE_HEAP", "1");
    let heaped = CsrFile::open(&path);
    std::env::remove_var("STORAGE_FORCE_HEAP");
    let heaped = heaped.unwrap();
    assert!(!heaped.is_mapped());
    assert_eq!(mapped.to_graph().unwrap(), heaped.to_graph().unwrap());
    assert_eq!(heaped.to_graph().unwrap(), g);
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn forged_headers_are_rejected_not_trusted() {
    let dir = storage::test_dir("forged");
    let g = gen::gnp(30, 0.2, 11).unwrap();
    let path = dir.join("g.csr");
    write_graph(&g, &path).unwrap();
    let pristine = fs::read(&path).unwrap();

    // Wrong magic.
    let mut bad = pristine.clone();
    bad[0] = b'X';
    fs::write(dir.join("magic.csr"), &bad).unwrap();
    assert!(matches!(
        CsrFile::open(&dir.join("magic.csr")),
        Err(StorageError::BadMagic { .. })
    ));

    // Future version.
    let mut bad = pristine.clone();
    bad[8] = 0xFF;
    fs::write(dir.join("version.csr"), &bad).unwrap();
    assert!(matches!(
        CsrFile::open(&dir.join("version.csr")),
        Err(StorageError::BadVersion { .. })
    ));

    // Checksum forged to 0: sections no longer match.
    let mut bad = pristine.clone();
    for b in &mut bad[56..64] {
        *b = 0;
    }
    fs::write(dir.join("sum.csr"), &bad).unwrap();
    assert!(matches!(
        CsrFile::open(&dir.join("sum.csr")),
        Err(StorageError::ChecksumMismatch { .. })
    ));

    // Empty and absurdly short files.
    fs::write(dir.join("empty.csr"), b"").unwrap();
    assert!(CsrFile::open(&dir.join("empty.csr")).is_err());
    fs::write(dir.join("short.csr"), b"EXPDCSR\0").unwrap();
    assert!(CsrFile::open(&dir.join("short.csr")).is_err());

    fs::remove_dir_all(&dir).ok();
}

#[test]
fn committed_karate_sample_matches_published_ground_truth() {
    // The committed real dataset is itself under test: the numbers here
    // are from Zachary (1977), not from this codebase.
    let dir = storage::test_dir("karate");
    let out = dir.join("karate.csr");
    let report = convert_edge_list(
        Path::new("datasets/karate.txt"),
        &out,
        &ConvertOptions::default(),
    )
    .unwrap();
    assert_eq!((report.n, report.m), (34, 78));
    assert!(report.dense_relabeled, "1-indexed input must be relabeled");
    let g = CsrFile::open(&out).unwrap().to_graph().unwrap();
    assert_eq!(count_triangles(&g), 45);
    // Instructor (1) and president (34) are the two highest-degree hubs.
    assert_eq!(g.degree(0), 16);
    assert_eq!(g.degree(33), 17);
    // The measured pipeline on a real graph agrees with ground truth.
    let report = enumerate_via_decomposition(&g, &PipelineParams::default());
    assert_eq!(report.triangles.len(), 45);
    fs::remove_dir_all(&dir).ok();
}
