//! Hot-swap under churn (DESIGN.md §15): a live TCP server rides through
//! a `DeltaLedger` rebuild mid-stream.
//!
//! * the generation advances **exactly once** per [`swap_engine`] — no
//!   double-bumps, no skipped numbers;
//! * every wire response is stamped with the generation of the engine
//!   snapshot that answered it, and the answer matches that generation's
//!   in-process oracle bit-for-bit — **zero mismatches**, even for
//!   batches in flight across the swap boundary;
//! * batches already in flight finish on the engine they started with
//!   (the stamp proves which engine answered).
//!
//! [`swap_engine`]: server::server::ServerHandle::swap_engine

use expander_repro::prelude::*;
use server::client::{Client, ResponseBody};
use server::server::{serve_engine, ServerConfig};
use std::sync::Arc;
use std::time::Duration;
use triangle::{DeltaLedger, EdgeOp};

/// Probe queries the oracle comparison replays per generation.
fn probe_stream(n: usize) -> Vec<Query> {
    let mut qs = Vec::new();
    for v in 0..n as VertexId {
        qs.push(Query::Vertex {
            v,
            emit: Emit::Count,
        });
        qs.push(Query::Vertex {
            v,
            emit: Emit::Enumerate,
        });
        qs.push(Query::TopKBySupport { v, k: 2 });
    }
    qs
}

/// Asserts one wire response against the in-process oracle for the
/// engine generation that stamped it.
fn assert_matches_oracle(
    resp: &server::client::WireResponse,
    query: Query,
    oracles: &[(u64, Arc<QueryEngine>)],
) {
    let engine = &oracles
        .iter()
        .find(|(generation, _)| *generation == resp.generation)
        .unwrap_or_else(|| {
            panic!(
                "response stamped with unknown generation {}",
                resp.generation
            )
        })
        .1;
    let expected = engine.answer(query).unwrap();
    match &resp.body {
        ResponseBody::Answer(outcome) => {
            assert_eq!(
                outcome, &expected,
                "generation {} answered {:?} wrong",
                resp.generation, query
            );
        }
        other => panic!("expected an answer for {query:?}, got {other:?}"),
    }
}

#[test]
fn swap_mid_stream_is_generation_exact_and_mismatch_free() {
    let g0 = gen::gnp(40, 0.18, 23).unwrap();
    let params = PipelineParams {
        seed: 23,
        ..Default::default()
    };
    let engine0 = Arc::new(QueryEngine::build(&g0, &params));

    let config = ServerConfig {
        batch_max: 8,
        flush_interval: Duration::from_micros(200),
        ..Default::default()
    };
    let handle = serve_engine(Arc::clone(&engine0), &config).unwrap();
    assert_eq!(handle.generation(), 1);

    let mut client = Client::connect(handle.addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let queries = probe_stream(g0.n());

    // ── Phase A: the whole stream answers on generation 1. ──
    let oracles = vec![(1u64, Arc::clone(&engine0))];
    let responses = client.run_pipelined(&queries, 16, 8).unwrap();
    for (resp, &q) in responses.iter().zip(&queries) {
        assert_eq!(resp.generation, 1, "no swap yet");
        assert_matches_oracle(resp, q, &oracles);
    }

    // ── The churn batch: maintain incrementally, rebuild, swap. ──
    let mut ledger = DeltaLedger::new(&g0, Arc::clone(&engine0));
    let churn: Vec<EdgeOp> = (0..12)
        .map(|i| {
            if i % 3 == 0 {
                EdgeOp::Delete(i, (i + 1) % g0.n() as VertexId)
            } else {
                EdgeOp::Insert(i, (i + 5) % g0.n() as VertexId)
            }
        })
        .collect();
    ledger.apply(&churn);
    let rebuild = ledger.rebuild(&params);
    let reloads_before = handle.stats().reloads;
    let generation = handle.swap_engine(Arc::clone(&rebuild.engine));
    assert_eq!(
        generation, 2,
        "one swap advances the generation exactly once"
    );
    assert_eq!(handle.generation(), 2);
    assert_eq!(handle.stats().reloads, reloads_before + 1);
    assert!(
        Arc::ptr_eq(&handle.engine(), &rebuild.engine),
        "the serving snapshot is the refrozen engine itself"
    );

    // ── Phase B: the stream now answers on generation 2, against the
    // refrozen engine's oracle. ──
    let oracles = vec![
        (1u64, Arc::clone(&engine0)),
        (2u64, Arc::clone(&rebuild.engine)),
    ];
    let responses = client.run_pipelined(&queries, 16, 8).unwrap();
    for (resp, &q) in responses.iter().zip(&queries) {
        assert_eq!(resp.generation, 2, "post-swap batches see the new engine");
        assert_matches_oracle(resp, q, &oracles);
    }

    handle.shutdown();
}

#[test]
fn concurrent_stream_across_many_swaps_never_mismatches() {
    // A client pipelines continuously while the main thread swaps the
    // engine repeatedly (alternating two refrozen generations). Batches
    // in flight at a swap finish on their snapshot: every response's
    // generation stamp picks its oracle, and every answer must match it.
    let g0 = gen::gnp(32, 0.2, 29).unwrap();
    let params = PipelineParams {
        seed: 29,
        ..Default::default()
    };
    let engine0 = Arc::new(QueryEngine::build(&g0, &params));

    // The churned twin: one ledger batch away from g0.
    let mut ledger = DeltaLedger::new(&g0, Arc::clone(&engine0));
    ledger.apply(&[
        EdgeOp::Insert(0, 9),
        EdgeOp::Insert(1, 8),
        EdgeOp::Delete(2, 3),
    ]);
    let engine1 = ledger.rebuild(&params).engine;

    let config = ServerConfig {
        batch_max: 4,
        flush_interval: Duration::from_micros(100),
        ..Default::default()
    };
    let handle = serve_engine(Arc::clone(&engine0), &config).unwrap();
    let addr = handle.addr();

    const SWAPS: u64 = 6;
    let queries: Vec<Query> = probe_stream(g0.n()).into_iter().cycle().take(400).collect();
    let worker_queries = queries.clone();
    let client_thread = std::thread::spawn(move || {
        let mut client = Client::connect(addr).unwrap();
        client
            .set_read_timeout(Some(Duration::from_secs(10)))
            .unwrap();
        client.run_pipelined(&worker_queries, 32, 16).unwrap()
    });

    // Generation g serves engine0 when g is odd, engine1 when even.
    let mut expected_generation = 1;
    for _ in 0..SWAPS {
        std::thread::sleep(Duration::from_millis(3));
        let next = if expected_generation % 2 == 1 {
            Arc::clone(&engine1)
        } else {
            Arc::clone(&engine0)
        };
        let generation = handle.swap_engine(next);
        expected_generation += 1;
        assert_eq!(
            generation, expected_generation,
            "each swap advances the generation exactly once"
        );
    }
    assert_eq!(handle.generation(), 1 + SWAPS);
    assert_eq!(handle.stats().reloads, SWAPS);

    let oracles: Vec<(u64, Arc<QueryEngine>)> = (1..=1 + SWAPS)
        .map(|generation| {
            let engine = if generation % 2 == 1 {
                Arc::clone(&engine0)
            } else {
                Arc::clone(&engine1)
            };
            (generation, engine)
        })
        .collect();
    let responses = client_thread.join().unwrap();
    assert_eq!(responses.len(), queries.len());
    let mut by_generation = vec![0u64; 2 + SWAPS as usize];
    for (resp, &q) in responses.iter().zip(&queries) {
        assert!(
            (1..=1 + SWAPS).contains(&resp.generation),
            "generation {} was never armed",
            resp.generation
        );
        by_generation[resp.generation as usize] += 1;
        assert_matches_oracle(resp, q, &oracles);
    }
    // The stream genuinely crossed swap boundaries: more than one
    // generation answered.
    let active = by_generation.iter().filter(|&&c| c > 0).count();
    assert!(active >= 2, "stream should span at least two generations");

    handle.shutdown();
}
