//! Decomposition **quality** bounds on fixed seeds (ROADMAP: the CI
//! trajectory the `quality-smoke` job guards). Where
//! `tests/decomposition_certificates.rs` proves outputs are *legal*,
//! this suite pins how *good* they are: cut fraction per removal tag,
//! cluster-count shape, and φ-certificate validity must not regress on
//! reproducible instances — and the whole [`QualityReport`] must be
//! deterministic per seed, so the uploaded jsonl is comparable across
//! commits.

use expander::{ExpanderDecomposition, QualityBounds, QualityReport};
use expander_repro::prelude::*;

fn decompose(g: &Graph, epsilon: f64, seed: u64) -> expander::DecompositionResult {
    ExpanderDecomposition::builder()
        .epsilon(epsilon)
        .seed(seed)
        .build()
        .run(g)
        .expect("non-empty graph")
}

/// The comparable scalar trajectory, extracted for equality checks.
fn key_metrics(q: &QualityReport) -> (usize, usize, [u64; 4], bool, bool) {
    let scaled = |f: f64| (f * 1e9) as u64;
    (
        q.cluster_count,
        q.singleton_clusters,
        [
            scaled(q.cut_fraction),
            scaled(q.cut_fraction_by_tag[0]),
            scaled(q.cut_fraction_by_tag[1]),
            scaled(q.cut_fraction_by_tag[2]),
        ],
        q.is_partition,
        q.certificates_ok,
    )
}

#[test]
fn theorem_bounds_hold_per_tag_across_families() {
    for seed in [7u64, 42] {
        let (ring, _) = gen::ring_of_cliques(6, 8).unwrap();
        let pp = gen::planted_partition(&[32, 32], 0.5, 0.03, seed).unwrap();
        for (label, g, eps) in [
            ("ring", ring, 0.3),
            ("gnp", gen::gnp(64, 0.3, seed).unwrap(), 0.3),
            ("planted", pp.graph, 0.4),
            ("path", gen::path(32).unwrap(), 0.3),
        ] {
            let res = decompose(&g, eps, seed);
            let q = QualityReport::measure(&g, &res);
            assert!(q.is_partition, "{label}/seed{seed}: not a partition");
            // Theorem 1's budgets: ε total, ε/3 per removal rule — the
            // runtime budget guards enforce these exactly, so equality
            // with the formula bound is the regression test.
            assert!(
                q.cut_fraction <= eps + 1e-12,
                "{label}/seed{seed}: cut fraction {} > ε = {eps}",
                q.cut_fraction
            );
            for (i, &frac) in q.cut_fraction_by_tag.iter().enumerate() {
                assert!(
                    frac <= eps / 3.0 + 1e-12,
                    "{label}/seed{seed}: Remove{} fraction {} > ε/3",
                    i + 1,
                    frac
                );
            }
            assert!(
                q.certificates_ok,
                "{label}/seed{seed}: min certified Φ {} below promised {}",
                q.min_certified_conductance, q.phi
            );
            assert_eq!(
                q.violations(&QualityBounds::for_epsilon(eps)),
                Vec::<String>::new(),
                "{label}/seed{seed}"
            );
        }
    }
}

#[test]
fn cluster_shape_does_not_regress_on_structured_inputs() {
    // A ring of 6 cliques must neither shred (≫ 6 clusters) nor blur
    // (one giant cluster spanning the ring).
    let (ring, cliques) = gen::ring_of_cliques(6, 8).unwrap();
    let q = QualityReport::measure(&ring, &decompose(&ring, 0.3, 7));
    let bounds = QualityBounds::for_epsilon(0.3)
        .with_max_clusters(4 * cliques.len())
        .with_min_largest_fraction(0.05);
    assert_eq!(q.violations(&bounds), Vec::<String>::new());
    assert!(
        q.cluster_count >= cliques.len(),
        "ring blurred into {} clusters",
        q.cluster_count
    );
    assert!(
        q.largest_cluster_fraction <= 0.5,
        "one cluster spans {} of the ring",
        q.largest_cluster_fraction
    );

    // A dense gnp is an expander: it must survive (near-)whole.
    let g = gen::gnp(64, 0.3, 7).unwrap();
    let q = QualityReport::measure(&g, &decompose(&g, 0.3, 7));
    let bounds = QualityBounds::for_epsilon(0.3).with_min_largest_fraction(0.5);
    assert_eq!(q.violations(&bounds), Vec::<String>::new());
    assert!(q.singleton_clusters <= g.n() / 4);
}

#[test]
fn quality_metrics_are_deterministic_per_seed() {
    let pp = gen::planted_partition(&[24, 24], 0.5, 0.04, 11).unwrap();
    let a = QualityReport::measure(&pp.graph, &decompose(&pp.graph, 0.4, 11));
    let b = QualityReport::measure(&pp.graph, &decompose(&pp.graph, 0.4, 11));
    assert_eq!(key_metrics(&a), key_metrics(&b));
    assert_eq!(a.to_json("x"), b.to_json("x"), "jsonl must be reproducible");
}

#[test]
fn per_tag_fractions_sum_to_the_total() {
    for seed in [3u64, 9] {
        let g = gen::gnp(48, 0.15, seed).unwrap();
        let q = QualityReport::measure(&g, &decompose(&g, 0.3, seed));
        let sum: f64 = q.cut_fraction_by_tag.iter().sum();
        assert!(
            (sum - q.cut_fraction).abs() < 1e-9,
            "tags {sum} vs total {}",
            q.cut_fraction
        );
    }
}

#[test]
fn violations_catch_a_corrupted_partition() {
    let (g, _) = gen::ring_of_cliques(5, 6).unwrap();
    let mut res = decompose(&g, 0.3, 2);
    res.parts.pop(); // lose a cluster: no longer a partition
    let q = QualityReport::measure(&g, &res);
    assert!(!q.is_partition);
    let v = q.violations(&QualityBounds::for_epsilon(0.3));
    assert!(
        v.iter().any(|l| l.contains("partition")),
        "violations: {v:?}"
    );
}
