//! The cluster-recursion scheduler's determinism contract (DESIGN.md
//! §7), property-tested end to end: the pipeline's output — cluster
//! assignment, triangle list, witness sample, round totals, per-level
//! routing charges — must be **bit-for-bit identical** between
//! sequential execution and work-stealing parallel execution on a
//! forced multi-thread pool, across random, planted-partition and
//! degenerate graphs.

use expander::scheduler::{run_jobs, SchedulerPolicy};
use expander::{ClusterAssignment, ExpanderDecomposition};
use expander_repro::prelude::*;
use proptest::prelude::*;
use triangle::enumerate_with_assignment;

/// Force real multi-threading in the scheduler's worker tasks, even on
/// one-core hosts (the rayon shim reads this once, at first use; the
/// scheduler additionally spawns one scoped task per configured worker
/// regardless of the global count). `set_var` runs exactly once under a
/// `Once` guard — repeated writes from concurrently running tests would
/// race with `getenv` readers elsewhere in the process.
fn force_threads() {
    static FORCE: std::sync::Once = std::sync::Once::new();
    FORCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

fn params(exec: ExecMode, workers: usize, seed: u64) -> PipelineParams {
    PipelineParams {
        seed,
        exec,
        recursion_exec: exec,
        recursion_workers: workers,
        ..Default::default()
    }
}

/// Everything the determinism contract covers, extracted for equality.
type Fingerprint = (Vec<Triangle>, Vec<Triangle>, u64, Vec<(u64, u64, usize)>);

fn fingerprint(r: &TriangleReport) -> Fingerprint {
    (
        r.triangles.clone(),
        r.witnesses.clone(),
        r.total_rounds(),
        r.levels
            .iter()
            .map(|l| (l.routing_queries, l.rounds(), l.clusters))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn pipeline_parallel_is_bit_identical_on_gnp(
        n in 8usize..32, p in 0.1f64..0.5, seed in any::<u64>()
    ) {
        force_threads();
        let g = gen::gnp(n, p, seed).unwrap();
        let seq = enumerate_via_decomposition(&g, &params(ExecMode::Sequential, 1, seed));
        let par = enumerate_via_decomposition(&g, &params(ExecMode::Parallel, 4, seed));
        prop_assert_eq!(fingerprint(&seq), fingerprint(&par));
    }

    #[test]
    fn pipeline_parallel_is_bit_identical_on_planted_partitions(
        half in 8usize..20, seed in any::<u64>()
    ) {
        force_threads();
        let pp = gen::planted_partition_fast(&[half, half], 0.5, 0.05, seed).unwrap();
        let seq = enumerate_via_decomposition(&pp.graph, &params(ExecMode::Sequential, 1, seed));
        let par = enumerate_via_decomposition(&pp.graph, &params(ExecMode::Parallel, 4, seed));
        prop_assert_eq!(fingerprint(&seq), fingerprint(&par));
        // And the decomposition layer itself: certificates measured in
        // parallel equal certificates measured sequentially.
        let decomp = ExpanderDecomposition::builder().seed(seed).build().run(&pp.graph).unwrap();
        let a = decomp.cluster_assignment_with(&pp.graph, &SchedulerPolicy::sequential());
        let b = decomp.cluster_assignment_with(&pp.graph, &SchedulerPolicy::with_workers(4));
        prop_assert_eq!(a.cluster_of, b.cluster_of);
        prop_assert_eq!(a.certificates, b.certificates);
        prop_assert_eq!(a.inter_cluster, b.inter_cluster);
    }

    #[test]
    fn planted_assignment_pipeline_is_bit_identical(
        count in 2usize..6, size in 8usize..20, seed in any::<u64>()
    ) {
        force_threads();
        let degree = 4usize.min(size - 1);
        let (g, blocks) = gen::ring_of_expanders(count, size, degree, seed).unwrap();
        let asg = ClusterAssignment::from_parts(&g, &blocks, 0.2, &SchedulerPolicy::sequential());
        let seq = enumerate_with_assignment(&g, &asg, &params(ExecMode::Sequential, 1, seed));
        let par = enumerate_with_assignment(&g, &asg, &params(ExecMode::Parallel, 4, seed));
        prop_assert_eq!(fingerprint(&seq), fingerprint(&par));
        prop_assert_eq!(seq.count(), triangle::count_triangles(&g));
    }

    #[test]
    fn scheduler_merge_order_is_execution_independent(
        jobs in proptest::collection::vec(any::<u32>(), 24), seed in any::<u64>()
    ) {
        force_threads();
        // Pure jobs with seed-derived outputs and wildly uneven runtimes:
        // the merged result vector must equal the inline map regardless.
        let work = |i: usize, j: u32| {
            let salt = expander::derive_seed(seed, i as u64);
            std::thread::sleep(std::time::Duration::from_micros((salt % 300) + u64::from(j % 7)));
            (i, j, salt)
        };
        let (seq, seq_stats) = run_jobs(jobs.clone(), &SchedulerPolicy::sequential(), work);
        let (par, par_stats) = run_jobs(jobs, &SchedulerPolicy::with_workers(4), work);
        prop_assert_eq!(&seq, &par);
        prop_assert_eq!(seq_stats.jobs, par_stats.jobs);
        prop_assert_eq!(par_stats.per_worker.iter().sum::<usize>(), par_stats.jobs);
    }
}

#[test]
fn degenerate_graphs_are_mode_independent() {
    force_threads();
    for g in [
        Graph::from_edges(1, []).unwrap(),
        Graph::from_edges(6, []).unwrap(),
        Graph::from_edges(4, [(0, 0), (1, 1)]).unwrap(), // loops only
        Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap(), // parallel edges
        gen::star(9).unwrap(),                           // shreds to singletons
        gen::path(12).unwrap(),
    ] {
        let seq = enumerate_via_decomposition(&g, &params(ExecMode::Sequential, 1, 3));
        let par = enumerate_via_decomposition(&g, &params(ExecMode::Parallel, 4, 3));
        assert_eq!(fingerprint(&seq), fingerprint(&par), "n = {}", g.n());
        assert_eq!(seq.count(), triangle::count_triangles(&g));
    }
}
