//! The churn-tier equivalence wall (DESIGN.md §15): after ANY interleaved
//! insert/delete stream, the incremental `DeltaLedger` must be
//! bit-identical to throwing everything away and rebuilding from scratch
//! on the final graph —
//!
//! * the maintained triangle **count** equals `count_triangles(final)`;
//! * the maintained **witness set** (initial triangles patched by every
//!   batch's created/destroyed lists) equals `enumerate_triangles(final)`;
//! * the materialized overlay equals the reference multigraph exactly
//!   (adjacency, multiplicities, loops);
//! * after the incremental rebuild (certificate-driven reclustering +
//!   artifact-reusing refreeze), query **answers** equal a from-scratch
//!   `QueryEngine::build` on the final graph for every vertex, edge, and
//!   top-k query probed — and serving on the refrozen engine is
//!   bit-identical (charges included) between the sequential and the
//!   forced 4-worker schedule.
//!
//! Charges/witness *seeds* of the refrozen engine are deliberately out of
//! scope: reused hierarchies keep their original seeds, so routing
//! accounting may differ from a fresh build while answers cannot.
//!
//! The stream generator forces the regression-prone paths explicitly:
//! delete-then-reinsert of the same edge (slot resurrection), parallel
//! copies (multiplicity 0 ↔ 1 boundary), self loops (never triangles),
//! absent deletes and loop deletes (ignored, must not dirty clusters).

use expander_repro::prelude::*;
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;
use triangle::{DeltaLedger, EdgeOp};

/// The four workload families of the wall. Degenerate = too small to
/// decompose (the engine's singleton-cluster path).
fn base_graph(family: u8, seed: u64) -> Graph {
    match family % 4 {
        0 => gen::gnp(24, 0.2, seed).unwrap(),
        1 => {
            gen::planted_partition(&[12, 12, 12], 0.5, 0.04, seed)
                .unwrap()
                .graph
        }
        // The pairing-model repair is seed-sensitive on tiny expanders;
        // bump the seed until a simple 4-regular block materializes.
        2 => {
            (0..64)
                .find_map(|i| gen::ring_of_expanders(3, 8, 4, seed.wrapping_add(i)).ok())
                .expect("a simple 4-regular ring within 64 seed bumps")
                .0
        }
        _ => match seed % 3 {
            0 => gen::path(2).unwrap(),
            1 => gen::star(5).unwrap(),
            _ => Graph::from_edges(4, []).unwrap(),
        },
    }
}

/// SplitMix64 — the repo's deterministic test stream.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// An interleaved churn stream biased toward the paths that historically
/// break incremental maintenance.
fn churn_stream(g: &Graph, seed: u64, len: usize) -> Vec<EdgeOp> {
    let n = g.n() as u64;
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut state = seed | 1;
    let mut ops = Vec::with_capacity(len * 2);
    for _ in 0..len {
        let u = (splitmix(&mut state) % n) as VertexId;
        let v = (splitmix(&mut state) % n) as VertexId;
        match splitmix(&mut state) % 8 {
            0 => ops.push(EdgeOp::Insert(u, v)),
            1 if !edges.is_empty() => {
                // Parallel copy of a base edge.
                let (a, b) = edges[(splitmix(&mut state) % edges.len() as u64) as usize];
                ops.push(EdgeOp::Insert(a, b));
            }
            2 if !edges.is_empty() => {
                let (a, b) = edges[(splitmix(&mut state) % edges.len() as u64) as usize];
                ops.push(EdgeOp::Delete(a, b));
            }
            3 if !edges.is_empty() => {
                // Delete-then-reinsert the same edge.
                let (a, b) = edges[(splitmix(&mut state) % edges.len() as u64) as usize];
                ops.push(EdgeOp::Delete(a, b));
                ops.push(EdgeOp::Insert(b, a));
            }
            4 => {
                // Insert-then-delete a fresh pair.
                ops.push(EdgeOp::Insert(u, v));
                ops.push(EdgeOp::Delete(u, v));
            }
            5 => ops.push(EdgeOp::Insert(u, u)), // self loop
            6 => ops.push(EdgeOp::Delete(u, u)), // ignored by contract
            _ => ops.push(EdgeOp::Delete(u, v)), // often absent
        }
    }
    ops
}

/// Reference multigraph: explicit edge multiset + per-vertex loop tally,
/// maintained op by op with the churn contract (absent/loop deletes are
/// no-ops), rebuilt into a fresh `Graph` on demand.
struct Model {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    loops: Vec<u32>,
}

impl Model {
    fn of(g: &Graph) -> Model {
        Model {
            n: g.n(),
            edges: g.edges().collect(),
            loops: (0..g.n() as VertexId).map(|v| g.self_loops(v)).collect(),
        }
    }

    fn apply(&mut self, op: EdgeOp) {
        match op {
            EdgeOp::Insert(u, v) => {
                if u == v {
                    self.loops[u as usize] += 1;
                } else {
                    self.edges.push((u, v));
                }
            }
            EdgeOp::Delete(u, v) => {
                if u == v {
                    return;
                }
                let hit = self
                    .edges
                    .iter()
                    .position(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u));
                if let Some(pos) = hit {
                    self.edges.remove(pos);
                }
            }
        }
    }

    fn build(&self) -> Graph {
        let mut all = self.edges.clone();
        for (v, &c) in self.loops.iter().enumerate() {
            for _ in 0..c {
                all.push((v as VertexId, v as VertexId));
            }
        }
        Graph::from_edges(self.n, all).unwrap()
    }
}

/// The forced 4-worker build parameters of the wall.
fn wall_params(seed: u64) -> PipelineParams {
    PipelineParams {
        seed,
        recursion_exec: ExecMode::Parallel,
        recursion_workers: 4,
        ..Default::default()
    }
}

/// The deterministic probe stream: every vertex (count + enumerate),
/// sampled edge queries (present and absent), and top-k.
fn probes(g: &Graph, seed: u64) -> Vec<Query> {
    let mut state = seed | 1;
    let n = g.n() as u64;
    let mut qs = Vec::new();
    for v in 0..g.n() as VertexId {
        qs.push(Query::Vertex {
            v,
            emit: Emit::Count,
        });
        qs.push(Query::Vertex {
            v,
            emit: Emit::Enumerate,
        });
        qs.push(Query::TopKBySupport { v, k: 3 });
    }
    for _ in 0..2 * g.n() {
        let u = (splitmix(&mut state) % n) as VertexId;
        let v = (splitmix(&mut state) % n) as VertexId;
        qs.push(Query::Edge {
            u,
            v,
            emit: Emit::Enumerate,
        });
    }
    qs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn incremental_churn_is_bit_identical_to_rebuild(
        family in 0u8..4, seed in any::<u64>()
    ) {
        let g0 = base_graph(family, seed);
        let params = wall_params(seed);
        let engine = Arc::new(QueryEngine::build(&g0, &params));
        let mut ledger = DeltaLedger::new(&g0, Arc::clone(&engine));
        let mut model = Model::of(&g0);
        let mut witnesses: BTreeSet<Triangle> =
            enumerate_triangles(&g0).into_iter().collect();

        let ops = churn_stream(&g0, seed ^ 0xC0FFEE, 40);
        for batch in ops.chunks(7) {
            let report = ledger.apply(batch);
            for op in batch {
                model.apply(*op);
            }
            // Witness-set patches apply exactly: nothing destroyed that
            // was absent, nothing created that already existed.
            for t in &report.destroyed {
                prop_assert!(witnesses.remove(t), "destroyed unknown witness {t}");
            }
            for t in &report.created {
                prop_assert!(witnesses.insert(*t), "created duplicate witness {t}");
            }
            prop_assert_eq!(ledger.triangles(), witnesses.len() as u64);
        }

        // ── The from-scratch reference on the final graph. ──
        let final_g = model.build();
        prop_assert_eq!(&ledger.working().to_graph(), &final_g, "overlay identity");
        prop_assert_eq!(ledger.triangles(), count_triangles(&final_g), "count identity");
        let fresh_witnesses: BTreeSet<Triangle> =
            enumerate_triangles(&final_g).into_iter().collect();
        prop_assert_eq!(&witnesses, &fresh_witnesses, "witness identity");

        // ── Incremental rebuild vs fresh build: answers must agree. ──
        let report = ledger.rebuild(&params);
        let fresh = QueryEngine::build(&final_g, &params);
        for q in probes(&final_g, seed ^ 0xFACADE) {
            let inc = report.engine.answer(q).unwrap().answer;
            let scratch = fresh.answer(q).unwrap().answer;
            prop_assert_eq!(inc, scratch, "query {:?}", q);
        }

        // ── Scheduler determinism survives refreeze: sequential vs the
        // forced 4-worker pool, charges included. ──
        let stream = probes(&final_g, seed ^ 0xBEEF);
        let seq = report.engine.serve(&stream, &SchedulerPolicy::sequential());
        let par = report.engine.serve(&stream, &SchedulerPolicy::with_workers(4));
        prop_assert!(seq.answers_match(&par), "seq/par divergence after refreeze");
    }

    #[test]
    fn repeated_batches_with_policy_rebuilds_stay_exact(
        family in 0u8..4, seed in any::<u64>()
    ) {
        // Interleave apply and policy-driven rebuilds (tiny staleness
        // budget, so several rebuilds fire mid-stream): the ledger must
        // stay exact across every rebase.
        let g0 = base_graph(family, seed);
        let params = wall_params(seed);
        let engine = Arc::new(QueryEngine::build(&g0, &params));
        let mut ledger = DeltaLedger::new(&g0, Arc::clone(&engine));
        let mut model = Model::of(&g0);
        let policy = triangle::ChurnPolicy {
            max_stale_edges: 5,
            max_stale_secs: f64::INFINITY,
        };
        let ops = churn_stream(&g0, seed ^ 0xDADA, 30);
        let mut rebuilds = 0usize;
        for batch in ops.chunks(4) {
            let (_, rebuilt) = ledger.maintain(batch, &policy, &params);
            for op in batch {
                model.apply(*op);
            }
            if let Some(r) = rebuilt {
                rebuilds += 1;
                prop_assert!(r.reused + r.rebuilt >= 1);
            }
            prop_assert_eq!(
                ledger.triangles(),
                count_triangles(&model.build()),
                "count drifted mid-stream"
            );
        }
        let final_g = model.build();
        prop_assert_eq!(&ledger.working().to_graph(), &final_g);
        // Answers on the final engine (post final rebuild) match scratch.
        ledger.rebuild(&params);
        let fresh = QueryEngine::build(&final_g, &params);
        for v in 0..final_g.n() as VertexId {
            let q = Query::Vertex { v, emit: Emit::Enumerate };
            prop_assert_eq!(
                ledger.engine().answer(q).unwrap().answer,
                fresh.answer(q).unwrap().answer,
                "vertex {} after {} mid-stream rebuilds",
                v,
                rebuilds
            );
        }
    }
}
