//! The persistence contract of the frozen-artifact section (ISSUE 8
//! acceptance): a built [`QueryEngine`] persisted into the on-disk CSR
//! reloads **without re-decomposing**, answers a fixed query stream
//! bit-identically (routing charges included), and reloading is a small
//! fraction of building. Corrupted artifact payloads are typed errors.

use expander_repro::prelude::*;
use expander_repro::storage::{artifact, StorageError};
use std::fs;
use std::time::Instant;

/// Deterministic mixed query stream over `n` vertices.
fn stream(n: u32, count: usize) -> Vec<Query> {
    (0..count as u32)
        .map(|i| match i % 4 {
            0 => Query::Vertex {
                v: i % n,
                emit: Emit::Enumerate,
            },
            1 => Query::Vertex {
                v: (i * 13) % n,
                emit: Emit::Count,
            },
            2 => Query::Edge {
                u: i % n,
                v: (i * 7 + 3) % n,
                emit: Emit::Enumerate,
            },
            _ => Query::TopKBySupport { v: i % n, k: 4 },
        })
        .collect()
}

#[test]
fn persisted_engine_reloads_bit_identical_and_fast() {
    let dir = storage::test_dir("persist-gate");
    let path = dir.join("g.csr");
    // Big enough that the build does real decomposition + hierarchy work
    // and the restore/build ratio is signal, small enough for CI.
    let g = gen::gnp(400, 0.05, 4242).unwrap();
    write_graph(&g, &path).unwrap();

    let t = Instant::now();
    let engine = QueryEngine::build(&g, &PipelineParams::default());
    let build_wall = t.elapsed();
    artifact::store(&path, &engine).unwrap();

    let t = Instant::now();
    let file = CsrFile::open(&path).unwrap();
    let restored = artifact::load(&file).unwrap();
    let restore_wall = t.elapsed();

    // Bit-identity on a fixed query stream, charges included.
    let qs = stream(g.n() as u32, 400);
    let policy = SchedulerPolicy::sequential();
    let a = engine.serve(&qs, &policy);
    let b = restored.serve(&qs, &policy);
    assert!(
        a.answers_match(&b),
        "restored engine diverged from the built engine"
    );
    assert_eq!(a.count_checksum(), b.count_checksum());

    // Restore must cost a small fraction of the build. The ISSUE gate is
    // <10%; assert a looser 50% here so debug-profile CI timing noise
    // cannot flake the suite (the 10% gate runs in ingest-smoke, release
    // profile, via `exp_ingest --restore-budget 0.1`).
    let ratio = restore_wall.as_secs_f64() / build_wall.as_secs_f64().max(1e-9);
    assert!(
        ratio < 0.5,
        "restore took {ratio:.2}x the build ({restore_wall:?} vs {build_wall:?})"
    );
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn persistence_composes_with_converted_real_input() {
    // End to end on the committed real dataset: convert → store → reload.
    let dir = storage::test_dir("persist-karate");
    let path = dir.join("karate.csr");
    convert_edge_list(
        std::path::Path::new("datasets/karate.txt"),
        &path,
        &ConvertOptions::default(),
    )
    .unwrap();
    let g = CsrFile::open(&path).unwrap().to_graph().unwrap();
    let engine = QueryEngine::build(&g, &PipelineParams::default());
    artifact::store(&path, &engine).unwrap();

    let file = CsrFile::open(&path).unwrap();
    assert!(file.header().has_artifact());
    // The graph sections are untouched by the artifact rewrite.
    assert_eq!(file.to_graph().unwrap(), g);
    let restored = artifact::load(&file).unwrap();
    let qs = stream(34, 200);
    let policy = SchedulerPolicy::sequential();
    assert!(engine
        .serve(&qs, &policy)
        .answers_match(&restored.serve(&qs, &policy)));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupting_the_artifact_section_is_always_a_typed_error() {
    let dir = storage::test_dir("persist-corrupt");
    let path = dir.join("g.csr");
    let g = gen::gnp(60, 0.15, 17).unwrap();
    write_graph(&g, &path).unwrap();
    let engine = QueryEngine::build(&g, &PipelineParams::default());
    artifact::store(&path, &engine).unwrap();

    let pristine = fs::read(&path).unwrap();
    let artifact_start = {
        let file = CsrFile::open(&path).unwrap();
        pristine.len() - file.header().artifact_len as usize
    };
    // Any byte flip inside the payload trips the file checksum at open.
    for at in (artifact_start..pristine.len()).step_by(97) {
        let mut bent = pristine.clone();
        bent[at] ^= 0x10;
        let f = dir.join("bent.csr");
        fs::write(&f, &bent).unwrap();
        assert!(
            matches!(
                CsrFile::open(&f),
                Err(StorageError::ChecksumMismatch { .. })
            ),
            "flip at {at} not caught by the checksum"
        );
    }
    // A graph-only file (no artifact) refuses to load an engine.
    let plain = dir.join("plain.csr");
    write_graph(&g, &plain).unwrap();
    let file = CsrFile::open(&plain).unwrap();
    assert!(matches!(
        artifact::load(&file),
        Err(StorageError::Artifact { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}

#[test]
fn store_refuses_an_engine_for_a_different_graph() {
    let dir = storage::test_dir("persist-mismatch");
    let path = dir.join("g.csr");
    write_graph(&gen::gnp(50, 0.2, 1).unwrap(), &path).unwrap();
    let other = gen::gnp(51, 0.2, 1).unwrap();
    let engine = QueryEngine::build(&other, &PipelineParams::default());
    assert!(matches!(
        artifact::store(&path, &engine),
        Err(StorageError::Artifact { .. })
    ));
    fs::remove_dir_all(&dir).ok();
}
