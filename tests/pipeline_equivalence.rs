//! The pipeline's completeness contract, property-tested: on every random
//! graph, `enumerate_via_decomposition` returns **exactly** the triangle
//! set of the naive `O(n³)` reference counter — including graphs the
//! decomposition shreds entirely into singletons.

use expander_repro::prelude::*;
use proptest::prelude::*;
use triangle::count::enumerate_triangles_naive;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn pipeline_matches_naive_on_gnp(
        n in 6usize..32, p in 0.05f64..0.5, seed in any::<u64>()
    ) {
        let g = gen::gnp(n, p, seed).unwrap();
        let report = enumerate_via_decomposition(&g, &PipelineParams::default());
        prop_assert_eq!(&report.triangles, &enumerate_triangles_naive(&g));
        prop_assert_eq!(report.count(), triangle::count_triangles(&g));
    }

    #[test]
    fn pipeline_matches_naive_on_ring_of_cliques(
        count in 3usize..7, size in 3usize..7, pipeline_seed in any::<u64>()
    ) {
        let (g, _) = gen::ring_of_cliques(count, size).unwrap();
        let params = PipelineParams { seed: pipeline_seed, ..Default::default() };
        let report = enumerate_via_decomposition(&g, &params);
        prop_assert_eq!(&report.triangles, &enumerate_triangles_naive(&g));
    }

    #[test]
    fn pipeline_matches_naive_when_decomposition_removes_everything(
        n in 4usize..24, seed in any::<u64>()
    ) {
        // Sparse tree-ish graphs: unions of a path and a random matching
        // decompose into singletons (or nearly), pushing every edge into
        // E* — the recursion/residual path must still be exact.
        let base = gen::path(n).unwrap();
        let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
        let mut s = seed;
        for v in 0..(n as VertexId) / 2 {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            let w = (s >> 33) as VertexId % n as VertexId;
            if w != v {
                edges.push((v, w));
            }
        }
        let g = Graph::from_edges(n, edges).unwrap();
        let report = enumerate_via_decomposition(&g, &PipelineParams::default());
        prop_assert_eq!(&report.triangles, &enumerate_triangles_naive(&g));
    }

    #[test]
    fn pipeline_exec_mode_is_immaterial(n in 6usize..24, seed in any::<u64>()) {
        let g = gen::gnp(n, 0.3, seed).unwrap();
        let par = enumerate_via_decomposition(&g, &PipelineParams::default());
        let seq = enumerate_via_decomposition(
            &g,
            &PipelineParams { exec: ExecMode::Sequential, ..Default::default() },
        );
        prop_assert_eq!(&par.triangles, &seq.triangles);
        prop_assert_eq!(par.total_rounds(), seq.total_rounds());
    }
}

#[test]
fn pipeline_matches_naive_on_edge_free_and_degenerate_graphs() {
    for g in [
        Graph::from_edges(1, []).unwrap(),
        Graph::from_edges(4, []).unwrap(),
        Graph::from_edges(3, [(0, 0), (1, 1)]).unwrap(), // loops only
        Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap(), // parallel edges
    ] {
        let report = enumerate_via_decomposition(&g, &PipelineParams::default());
        assert_eq!(report.triangles, enumerate_triangles_naive(&g));
    }
}
