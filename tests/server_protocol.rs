//! Fuzz-grade guarantees of the wire protocol (ISSUE 9, DESIGN.md §14):
//!
//! * **round-trip identity** — every well-formed frame, query, outcome,
//!   and error payload decodes back to exactly what was encoded;
//! * **total decoding** — arbitrary bytes, truncations, and single-bit
//!   flips of valid frames produce `Ok` or a typed
//!   [`ProtocolError`], never a panic and never an allocation driven by
//!   a forged length prefix;
//! * **stream discipline** — concatenated frames read back one by one
//!   through the codec, and a clean EOF between frames is distinguished
//!   from truncation inside one.

use expander_repro::prelude::*;
use proptest::prelude::*;
use routing::QueryCharge;
use server::codec::{read_frame, write_frame, CodecError};
use server::protocol::{
    decode_error, decode_outcome, decode_query, encode_error, encode_outcome, encode_query,
    FrameHeader, HEADER_LEN,
};
use triangle::service::EdgeSupport;
use triangle::Triangle;

const MAX_PAYLOAD: u32 = 1 << 20;

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Query),
        Just(Opcode::Ping),
        Just(Opcode::Reload),
        Just(Opcode::Answer),
        Just(Opcode::Error),
        Just(Opcode::Pong),
        Just(Opcode::Busy),
        Just(Opcode::Reloaded),
    ]
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        arb_opcode(),
        any::<u64>(),
        any::<u64>(),
        proptest::collection::vec(any::<u8>(), 0..256),
    )
        .prop_map(|(opcode, id, generation, payload)| Frame::new(opcode, id, generation, payload))
}

fn arb_emit() -> impl Strategy<Value = Emit> {
    prop_oneof![Just(Emit::Count), Just(Emit::Enumerate)]
}

fn arb_query() -> impl Strategy<Value = Query> {
    prop_oneof![
        (any::<u32>(), arb_emit()).prop_map(|(v, emit)| Query::Vertex { v, emit }),
        (any::<u32>(), any::<u32>(), arb_emit()).prop_map(|(u, v, emit)| Query::Edge {
            u,
            v,
            emit
        }),
        (any::<u32>(), 0usize..64).prop_map(|(v, k)| Query::TopKBySupport { v, k }),
    ]
}

fn arb_charge() -> impl Strategy<Value = QueryCharge> {
    (
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        any::<bool>(),
    )
        .prop_map(
            |(words, queries, rounds, max_congestion, delivered)| QueryCharge {
                words,
                queries,
                rounds,
                max_congestion,
                delivered,
            },
        )
}

/// Strictly ascending `a < b < c` vertex triples, the only shape
/// `Triangle::new` accepts.
fn arb_triangle() -> impl Strategy<Value = Triangle> {
    (0u32..1000, 1u32..1000, 1u32..1000)
        .prop_map(|(a, db, dc)| Triangle::new(a, a + db, a + db + dc))
}

fn arb_answer() -> impl Strategy<Value = Answer> {
    prop_oneof![
        any::<u64>().prop_map(Answer::Count),
        proptest::collection::vec(arb_triangle(), 0..16).prop_map(Answer::Triangles),
        proptest::collection::vec(
            (any::<u32>(), any::<u32>(), any::<u64>()).prop_map(|(u, v, support)| EdgeSupport {
                u,
                v,
                support
            }),
            0..16
        )
        .prop_map(Answer::TopEdges),
    ]
}

fn arb_outcome() -> impl Strategy<Value = QueryOutcome> {
    (arb_answer(), arb_charge()).prop_map(|(answer, charge)| QueryOutcome { answer, charge })
}

fn arb_wire_error() -> impl Strategy<Value = WireError> {
    let printable = proptest::collection::vec(32u8..127, 0usize..80)
        .prop_map(|bytes| String::from_utf8(bytes).expect("printable ASCII"));
    prop_oneof![
        any::<u32>().prop_map(|v| WireError::UnknownVertex { v }),
        printable.prop_map(|reason| WireError::Malformed { reason }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn frames_roundtrip_bit_exactly(frame in arb_frame()) {
        let bytes = frame.encode();
        prop_assert_eq!(Frame::decode(&bytes, MAX_PAYLOAD).unwrap(), frame);
    }

    #[test]
    fn query_payloads_roundtrip(q in arb_query()) {
        prop_assert_eq!(decode_query(&encode_query(&q)).unwrap(), q);
    }

    #[test]
    fn outcome_payloads_roundtrip(o in arb_outcome()) {
        prop_assert_eq!(decode_outcome(&encode_outcome(&o)).unwrap(), o);
    }

    #[test]
    fn error_payloads_roundtrip(e in arb_wire_error()) {
        prop_assert_eq!(decode_error(&encode_error(&e)).unwrap(), e);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_frame_decoder(
        bytes in proptest::collection::vec(any::<u8>(), 0..512)
    ) {
        // Total: Ok or a typed error, whatever the bytes.
        let _ = Frame::decode(&bytes, MAX_PAYLOAD);
        let mut cursor = &bytes[..];
        let _ = read_frame(&mut cursor, MAX_PAYLOAD);
    }

    #[test]
    fn arbitrary_bytes_never_panic_the_payload_decoders(
        bytes in proptest::collection::vec(any::<u8>(), 0..256)
    ) {
        let _ = decode_query(&bytes);
        let _ = decode_outcome(&bytes);
        let _ = decode_error(&bytes);
    }

    #[test]
    fn single_bit_flips_of_a_valid_frame_are_total(
        frame in arb_frame(),
        flip in any::<usize>(),
    ) {
        let mut bytes = frame.encode();
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        // A flipped frame either still parses (the flip landed in the
        // id/generation/payload bytes) or fails with a typed error; it
        // never panics and never reports success with different length
        // semantics than the buffer.
        if let Ok(parsed) = Frame::decode(&bytes, MAX_PAYLOAD) {
            prop_assert_eq!(parsed.payload.len(), frame.payload.len());
        }
    }

    #[test]
    fn every_truncation_of_a_valid_frame_is_typed(frame in arb_frame()) {
        let bytes = frame.encode();
        for cut in 0..bytes.len() {
            match Frame::decode(&bytes[..cut], MAX_PAYLOAD) {
                Err(ProtocolError::Truncated { .. }) => {}
                other => prop_assert!(false, "cut {} gave {:?}", cut, other),
            }
        }
    }

    #[test]
    fn concatenated_frames_stream_back_in_order(
        frames in proptest::collection::vec(arb_frame(), 1..8)
    ) {
        let mut wire = Vec::new();
        for f in &frames {
            write_frame(&mut wire, f).unwrap();
        }
        let mut cursor = &wire[..];
        for f in &frames {
            let got = read_frame(&mut cursor, MAX_PAYLOAD).unwrap().unwrap();
            prop_assert_eq!(&got, f);
        }
        // Clean EOF between frames, not an error.
        prop_assert!(read_frame(&mut cursor, MAX_PAYLOAD).unwrap().is_none());
    }

    #[test]
    fn forged_length_prefixes_cannot_demand_allocation(
        claimed in (MAX_PAYLOAD + 1)..u32::MAX,
        id in any::<u64>(),
    ) {
        // Hand-build a header whose payload_len exceeds the cap: the
        // decoder must reject it from the 24 header bytes alone.
        let header = FrameHeader {
            opcode: Opcode::Query,
            id,
            generation: 0,
            payload_len: claimed,
        };
        let bytes = header.encode();
        match FrameHeader::decode(&bytes, MAX_PAYLOAD) {
            Err(ProtocolError::Oversize { .. }) => {}
            other => prop_assert!(false, "claimed {} gave {:?}", claimed, other),
        }
        let mut cursor = &bytes[..];
        prop_assert!(matches!(
            read_frame(&mut cursor, MAX_PAYLOAD),
            Err(CodecError::Protocol(ProtocolError::Oversize { .. }))
        ));
    }
}

/// The mid-payload-truncation case needs a reader, not a slice decode:
/// the codec must distinguish "clean EOF between frames" from "EOF with
/// a frame half-read".
#[test]
fn truncation_inside_the_payload_is_not_a_clean_eof() {
    let frame = Frame::new(Opcode::Query, 9, 0, vec![1, 2, 3, 4, 5, 6, 7, 8]);
    let bytes = frame.encode();
    for cut in 1..bytes.len() {
        let mut cursor = &bytes[..cut];
        assert!(
            matches!(
                read_frame(&mut cursor, MAX_PAYLOAD),
                Err(CodecError::Protocol(ProtocolError::Truncated { .. }))
            ),
            "cut {cut} was not reported as truncation"
        );
    }
    // Zero bytes IS a clean EOF.
    let mut empty: &[u8] = &[];
    assert!(read_frame(&mut empty, MAX_PAYLOAD).unwrap().is_none());
}

/// Every header malformation gets its own typed error, checked exactly.
#[test]
fn header_malformations_are_individually_typed() {
    let good = Frame::new(Opcode::Ping, 3, 0, Vec::new()).encode();
    assert_eq!(good.len(), HEADER_LEN);

    let mut bad_magic = good.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        Frame::decode(&bad_magic, MAX_PAYLOAD),
        Err(ProtocolError::BadMagic { .. })
    ));

    let mut bad_version = good.clone();
    bad_version[2] = 99;
    assert!(matches!(
        Frame::decode(&bad_version, MAX_PAYLOAD),
        Err(ProtocolError::UnsupportedVersion { .. })
    ));

    let mut bad_opcode = good.clone();
    bad_opcode[3] = 0x7F;
    assert!(matches!(
        Frame::decode(&bad_opcode, MAX_PAYLOAD),
        Err(ProtocolError::UnknownOpcode { .. })
    ));

    let mut trailing = good;
    trailing.push(0);
    assert!(matches!(
        Frame::decode(&trailing, MAX_PAYLOAD),
        Err(ProtocolError::TrailingBytes { .. })
    ));
}
