//! Validates the lock-step round accounting against the *exact* CONGEST
//! simulator (DESIGN.md §3): for every primitive that can be run both
//! ways, the two implementations must agree on results, and the lock-step
//! round charges must match the measured synchronous rounds.

use congest::algorithms::distributed_bfs;
use congest::{Ctx, ExecMode, Network, VertexProgram};
use expander_repro::prelude::*;

/// MPX `Clustering(β)` as a genuine message-passing CONGEST program:
/// vertex `v` wakes at its start epoch or joins a neighbor that announced
/// a cluster in an earlier round. One epoch = one round.
struct MpxProgram {
    start: usize,
    horizon: usize,
    cluster: Option<VertexId>,
    /// Smallest cluster id heard so far (chooses deterministically like
    /// the lock-step implementation).
    heard: Option<VertexId>,
}

impl VertexProgram for MpxProgram {
    type Msg = u32;

    fn init(&mut self, _ctx: &mut Ctx<'_, u32>) {}

    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
        let t = ctx.round();
        if t > self.horizon {
            return;
        }
        // Record announcements from neighbors clustered in earlier epochs.
        for &(_, c) in inbox {
            if self.heard.map_or(true, |h| c < h) {
                self.heard = Some(c);
            }
        }
        if self.cluster.is_some() {
            return;
        }
        if self.start == t {
            self.cluster = Some(ctx.me());
            ctx.broadcast(ctx.me());
        } else if self.start > t {
            if let Some(c) = self.heard {
                self.cluster = Some(c);
                ctx.broadcast(c);
            }
        }
    }

    fn halted(&self) -> bool {
        // Keep ticking until the horizon passes (epochs are time-driven).
        self.cluster.is_some()
    }
}

#[test]
fn mpx_message_passing_matches_lockstep() {
    let g = gen::gnp(60, 0.08, 3).unwrap();
    let n = g.n();
    let beta = 0.3;
    let horizon = (2.0 * (n as f64).ln() / beta).ceil() as usize;
    // Fixed start epochs shared by both implementations.
    let starts: Vec<usize> = (0..n)
        .map(|v| 1 + (v * 7 + 3) % horizon) // deterministic spread
        .collect();

    let lockstep = clustering_with_starts(&g, &starts, horizon);

    let make = |v: VertexId| MpxProgram {
        start: starts[v as usize],
        horizon,
        cluster: None,
        heard: None,
    };
    let (report, progs) = Network::new(&g).run_collect(make, horizon + 5).unwrap();

    for v in 0..n {
        let got = progs[v].cluster.unwrap_or(v as VertexId);
        assert_eq!(
            got, lockstep.cluster_of[v],
            "vertex {v} clustered differently (start {})",
            starts[v]
        );
    }

    // The parallel engine must reproduce the exact same execution.
    let (report_par, progs_par) = Network::new(&g)
        .with_exec_mode(ExecMode::Parallel)
        .run_collect(make, horizon + 5)
        .unwrap();
    assert_eq!(report, report_par, "exec modes must agree on the report");
    for v in 0..n {
        assert_eq!(progs[v].cluster, progs_par[v].cluster, "vertex {v}");
    }
}

#[test]
fn mpx_epoch_count_is_the_round_count() {
    // The lock-step `epochs` field is what the ledger charges for
    // `ldd.clustering`; it must never exceed the horizon and must bound
    // the message-passing rounds from above (the exact simulation can
    // quiesce early once all vertices are clustered).
    let g = gen::path(80).unwrap();
    let beta = 0.3;
    let c = clustering(&g, beta, 5);
    let horizon = (2.0 * (80f64).ln() / beta).ceil() as usize;
    assert!(c.epochs <= horizon);
    assert!(c.epochs >= 1);
}

#[test]
fn bfs_rounds_match_eccentricity_across_graphs() {
    for g in [
        gen::grid(7, 9).unwrap(),
        gen::cycle(30).unwrap(),
        gen::gnp(70, 0.07, 2).unwrap(),
    ] {
        if !traversal::is_connected(&g) {
            continue;
        }
        let (report, dist) = distributed_bfs(&g, 0, 100_000).unwrap();
        assert_eq!(dist, traversal::bfs_distances(&g, 0));
        let ecc = traversal::eccentricity(&g, 0).unwrap();
        // The wave reaches the last vertex at round ecc. If that vertex
        // still has neighbors that did not send to it, it forwards the
        // wave once more and quiescence costs one extra round — same
        // window the broadcast test allows for crossing wavefronts.
        assert!(
            report.rounds as u32 >= ecc && report.rounds as u32 <= ecc + 1,
            "BFS rounds {} outside [{ecc}, {}]",
            report.rounds,
            ecc + 1
        );
    }
}

#[test]
fn nibble_walk_charge_equals_t0() {
    // Lemma 9's first charge: the walk phase costs exactly t₀ rounds.
    let (g, _) = gen::barbell(8).unwrap();
    let params = NibbleParams::new(0.05, g.m(), ParamMode::Practical);
    let out = approximate_nibble(&g, 0, &params, 3);
    assert_eq!(out.ledger.category("nibble.walk"), params.t0 as u64);
}

#[test]
fn parallel_composition_takes_max_not_sum() {
    // Disjoint components decompose in parallel: total rounds must be far
    // below the sum of per-component runs.
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    for c in 0..4u32 {
        let base = c * 12;
        for u in 0..12u32 {
            for v in (u + 1)..12 {
                edges.push((base + u, base + v));
            }
        }
    }
    let g = Graph::from_edges(48, edges).unwrap();
    let whole = ExpanderDecomposition::builder()
        .seed(3)
        .build()
        .run(&g)
        .unwrap();

    let single = gen::complete(12).unwrap();
    let one = ExpanderDecomposition::builder()
        .seed(3)
        .build()
        .run(&single)
        .unwrap();
    // Four identical cliques in parallel should cost at most ~2 single
    // runs (identical, plus harness slack), never 4.
    assert!(
        whole.ledger.total() <= one.ledger.total() * 3,
        "parallel {} vs single {}",
        whole.ledger.total(),
        one.ledger.total()
    );
}
