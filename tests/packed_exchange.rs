//! The packed adjacency exchange's equivalence contract (DESIGN.md §10):
//! packing several delta-varint ids into each `O(log n)`-bit message
//! changes **only** engine traffic shape (rounds/messages/bits), never
//! the output — triangle list, witness sample, and the per-cluster
//! routing charges must be bit-for-bit identical to the unpacked
//! one-id-per-round baseline, under forced 4-thread pools. Plus the
//! round-complexity regression guard: measured exchange rounds on a
//! star-heavy fixture must stay within `⌈Δ / pack_factor⌉ + O(1)`, so a
//! future regression to one-id-per-round fails loudly.

use expander::SchedulerPolicy;
use expander_repro::prelude::*;
use proptest::prelude::*;
use triangle::count::enumerate_triangles_naive;

/// Force real multi-threading in the scheduler's worker tasks, even on
/// one-core hosts (the rayon shim reads this once, at first use).
fn force_threads() {
    static FORCE: std::sync::Once = std::sync::Once::new();
    FORCE.call_once(|| std::env::set_var("RAYON_NUM_THREADS", "4"));
}

fn params(packing: Packing, seed: u64) -> PipelineParams {
    PipelineParams {
        seed,
        packing,
        recursion_workers: 4,
        ..Default::default()
    }
}

/// Everything that must not depend on the wire format: the listing, the
/// witness sample, the residual charge, and the per-level analytic
/// charges (routing queries/words/rounds, decomposition rounds, cluster
/// counts). Engine rounds/messages/bits are intentionally excluded —
/// changing those is the whole point of packing.
type Fingerprint = (
    Vec<Triangle>,
    Vec<Triangle>,
    u64,
    Vec<(u64, u64, u64, u64, u64, usize, usize)>,
);

fn fingerprint(r: &TriangleReport) -> Fingerprint {
    (
        r.triangles.clone(),
        r.witnesses.clone(),
        r.residual_rounds,
        r.levels
            .iter()
            .map(|l| {
                (
                    l.routing_queries,
                    l.routing_words,
                    l.routing_rounds,
                    l.routing_build_rounds,
                    l.decomposition_rounds,
                    l.clusters,
                    l.triangles_found,
                )
            })
            .collect(),
    )
}

fn assert_packed_matches_unpacked(g: &Graph, seed: u64) {
    let packed = enumerate_via_decomposition(g, &params(Packing::Packed, seed));
    let unpacked = enumerate_via_decomposition(g, &params(Packing::Unpacked, seed));
    assert_eq!(
        fingerprint(&packed),
        fingerprint(&unpacked),
        "packed and unpacked exchange diverged (n = {}, m = {})",
        g.n(),
        g.m()
    );
    assert_eq!(packed.triangles, enumerate_triangles_naive(g));
    // Packing never *increases* engine rounds: the greedy encoder ships
    // at least one id per message.
    for (p, u) in packed.levels.iter().zip(&unpacked.levels) {
        assert!(
            p.engine.rounds <= u.engine.rounds,
            "packed {} > unpacked {} exchange rounds",
            p.engine.rounds,
            u.engine.rounds
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn packed_equals_unpacked_on_gnp(
        n in 8usize..36, p in 0.08f64..0.5, seed in any::<u64>()
    ) {
        force_threads();
        let g = gen::gnp(n, p, seed).unwrap();
        assert_packed_matches_unpacked(&g, seed);
    }

    #[test]
    fn packed_equals_unpacked_on_ring_of_cliques(
        count in 3usize..7, size in 3usize..7, seed in any::<u64>()
    ) {
        force_threads();
        let (g, _) = gen::ring_of_cliques(count, size).unwrap();
        assert_packed_matches_unpacked(&g, seed);
    }

    #[test]
    fn packed_equals_unpacked_on_planted_partition(
        half in 8usize..20, seed in any::<u64>()
    ) {
        force_threads();
        let pp = gen::planted_partition(&[half, half], 0.5, 0.08, seed).unwrap();
        assert_packed_matches_unpacked(&pp.graph, seed);
        // The planted-assignment entry point (the scale tier's path)
        // must agree too, including across exchange wire formats.
        let asg = expander::ClusterAssignment::from_parts(
            &pp.graph,
            &pp.blocks,
            0.1,
            &SchedulerPolicy::sequential(),
        );
        let packed =
            enumerate_with_assignment(&pp.graph, &asg, &params(Packing::Packed, seed));
        let unpacked =
            enumerate_with_assignment(&pp.graph, &asg, &params(Packing::Unpacked, seed));
        prop_assert_eq!(fingerprint(&packed), fingerprint(&unpacked));
        prop_assert_eq!(&packed.triangles, &enumerate_triangles_naive(&pp.graph));
    }

    #[test]
    fn packed_exchange_is_exec_mode_independent(
        n in 8usize..28, seed in any::<u64>()
    ) {
        force_threads();
        let g = gen::gnp(n, 0.3, seed).unwrap();
        let par = enumerate_via_decomposition(&g, &params(Packing::Packed, seed));
        let seq = enumerate_via_decomposition(
            &g,
            &PipelineParams {
                exec: ExecMode::Sequential,
                recursion_exec: ExecMode::Sequential,
                ..params(Packing::Packed, seed)
            },
        );
        // Sequential vs parallel stepping of the *packed* program is
        // bit-identical down to engine traffic, words included.
        prop_assert_eq!(par.total_rounds(), seq.total_rounds());
        prop_assert_eq!(&par.triangles, &seq.triangles);
        for (a, b) in par.levels.iter().zip(&seq.levels) {
            prop_assert_eq!(a.engine, b.engine);
        }
    }
}

#[test]
fn packed_equals_unpacked_on_degenerate_graphs() {
    force_threads();
    for g in [
        Graph::from_edges(1, []).unwrap(),
        Graph::from_edges(5, []).unwrap(),
        Graph::from_edges(3, [(0, 0), (1, 1)]).unwrap(), // loops only
        Graph::from_edges(2, [(0, 1), (0, 1)]).unwrap(), // parallel edges
        gen::path(9).unwrap(),
        gen::star(8).unwrap(),
        Graph::from_edges(8, [(0, 1), (2, 3), (4, 5), (6, 7)]).unwrap(),
        gen::complete(9).unwrap(),
    ] {
        assert_packed_matches_unpacked(&g, 7);
    }
}

/// A wheel: hub 0 adjacent to every rim vertex, rim a cycle. The hub's
/// degree Δ = n − 1 dominates the exchange, making round complexity
/// directly readable.
fn wheel(n: usize) -> Graph {
    let rim = n - 1;
    let mut edges: Vec<(VertexId, VertexId)> = (1..n as VertexId).map(|v| (0, v)).collect();
    for i in 1..rim as VertexId {
        edges.push((i, i + 1));
    }
    edges.push((rim as VertexId, 1));
    Graph::from_edges(n, edges).unwrap()
}

/// The round-complexity regression guard. The engine-measured exchange
/// rounds on a star-heavy fixture must be ≤ `⌈Δ / pack_factor⌉ + c`
/// where `pack_factor` is the codec's *guaranteed* ids-per-message lower
/// bound — any regression toward the one-id-per-round wire format blows
/// straight through this bound (Δ = 95 here, the bound ≈ 34).
#[test]
fn exchange_rounds_beat_the_packing_bound_on_a_star_heavy_fixture() {
    let n = 96;
    let g = wheel(n);
    let delta = (0..n as VertexId).map(|v| g.degree(v)).max().unwrap();
    assert_eq!(delta, n - 1, "hub dominates");

    // One cluster = the whole wheel: the exchange runs on exactly this
    // graph, so the Network's default budget is computable here.
    let whole = [VertexSet::from_fn(n, |_| true)];
    let asg =
        expander::ClusterAssignment::from_parts(&g, &whole, 0.5, &SchedulerPolicy::sequential());
    let budget_bytes = congest::packed::round_budget_bytes(Network::new(&g).bandwidth_bits());
    let pack_factor = congest::packed::min_ids_per_message(budget_bytes);
    assert!(pack_factor >= 2, "budget must fit several ids");

    let packed = enumerate_with_assignment(&g, &asg, &params(Packing::Packed, 3));
    let unpacked = enumerate_with_assignment(&g, &asg, &params(Packing::Unpacked, 3));
    assert_eq!(packed.triangles, unpacked.triangles);
    assert_eq!(
        packed.triangles.len(),
        n - 1,
        "wheel has rim-many triangles"
    );

    let packed_rounds = packed.levels[0].engine.rounds;
    let unpacked_rounds = unpacked.levels[0].engine.rounds;
    let bound = delta.div_ceil(pack_factor) + 2;
    assert!(
        packed_rounds <= bound,
        "packed exchange took {packed_rounds} rounds; bound ⌈Δ/pack⌉ + 2 = {bound} \
         (Δ = {delta}, pack_factor = {pack_factor}) — did the exchange regress toward \
         one id per round?"
    );
    // And the ablation really is the old shape: ≥ Δ rounds.
    assert!(
        unpacked_rounds >= delta,
        "unpacked exchange took {unpacked_rounds} < Δ = {delta} rounds"
    );
    // Packing must also move fewer messages (one per ~pack_factor ids).
    assert!(packed.levels[0].engine.messages * 2 <= unpacked.levels[0].engine.messages);
}
