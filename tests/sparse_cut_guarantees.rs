//! Theorem 3's two-sided guarantee, measured over seeds:
//!
//! * If `Φ(G) ≤ φ`, the returned cut has balance `≥ min(b/2, 1/48)` and
//!   conductance within the `h(φ)` promise.
//! * If `Φ(G) > φ`, the algorithm returns nothing or a cut within the
//!   `h(φ)` promise — never an arbitrary dense cut.

use expander_repro::prelude::*;

const SEEDS: [u64; 6] = [1, 2, 3, 5, 8, 13];

#[test]
fn balance_floor_on_balanced_planted_cuts() {
    // Barbell: most balanced sparse cut has b = 1/2, floor = 1/48.
    let (g, _) = gen::barbell(12).unwrap();
    let mut successes = 0;
    for seed in SEEDS {
        let out = nearly_most_balanced_sparse_cut(&g, 0.002, ParamMode::Practical, 4, seed);
        if let Some(cut) = &out.cut {
            assert!(
                cut.balance() >= 1.0 / 48.0 - 1e-9,
                "seed {seed}: balance {} below 1/48",
                cut.balance()
            );
            assert!(
                cut.conductance() <= out.promised_conductance(g.n()) + 1e-9,
                "seed {seed}: conductance above promise"
            );
            successes += 1;
        }
    }
    assert!(successes >= 5, "cut found for only {successes}/6 seeds");
}

#[test]
fn balance_floor_on_skewed_planted_cuts() {
    // Dumbbell K24+K8: planted balance b ≈ Vol(K8)/Vol ≈ 0.10;
    // floor = min(b/2, 1/48) = 1/48.
    let (g, left) = gen::dumbbell(24, 8, 0).unwrap();
    let small = left.complement();
    let b = g.balance(&small).unwrap();
    let floor = (b / 2.0).min(1.0 / 48.0);
    let mut successes = 0;
    for seed in SEEDS {
        let out = nearly_most_balanced_sparse_cut(&g, 0.002, ParamMode::Practical, 4, seed);
        if let Some(cut) = &out.cut {
            assert!(
                cut.balance() >= floor - 1e-9,
                "seed {seed}: balance {} below floor {floor}",
                cut.balance()
            );
            successes += 1;
        }
    }
    assert!(
        successes >= 4,
        "cut found for only {successes}/6 seeds (b = {b})"
    );
}

#[test]
fn expander_case_never_returns_dense_cuts() {
    let g = gen::random_regular(60, 8, 7).unwrap();
    for seed in SEEDS {
        let out = nearly_most_balanced_sparse_cut(&g, 0.002, ParamMode::Practical, 4, seed);
        if let Some(cut) = &out.cut {
            assert!(
                cut.conductance() <= out.promised_conductance(g.n()) + 1e-9,
                "seed {seed}: Φ {} above promise {}",
                cut.conductance(),
                out.promised_conductance(g.n())
            );
        }
    }
}

#[test]
fn partition_volume_cap_holds() {
    // Lemma 8 condition 1: Vol(C) ≤ (47/48)·Vol(V) always.
    for (g, _) in [
        gen::barbell(10).unwrap(),
        gen::dumbbell(16, 16, 3).unwrap(),
        gen::ring_of_cliques(5, 6)
            .map(|(g, c)| (g, c[0].clone()))
            .unwrap(),
    ] {
        for seed in [1u64, 9] {
            let out = nearly_most_balanced_sparse_cut(&g, 0.002, ParamMode::Practical, 4, seed);
            if let Some(cut) = &out.cut {
                assert!(
                    (cut.volume() as f64) <= 47.0 / 48.0 * g.total_volume() as f64,
                    "Vol(C) cap violated"
                );
            }
        }
    }
}

#[test]
fn detection_threshold_orders_families() {
    // At a fixed φ, the dumbbell (Φ ≈ 0.004) must be detected far more
    // often than the 8-regular expander (Φ ≈ 0.3).
    let (sparse, _) = gen::dumbbell(16, 16, 0).unwrap();
    let dense = gen::random_regular(34, 8, 11).unwrap();
    let mut sparse_hits = 0;
    let mut dense_hits = 0;
    for seed in SEEDS {
        if nearly_most_balanced_sparse_cut(&sparse, 0.002, ParamMode::Practical, 4, seed)
            .cut
            .is_some()
        {
            sparse_hits += 1;
        }
        if nearly_most_balanced_sparse_cut(&dense, 0.002, ParamMode::Practical, 4, seed)
            .cut
            .is_some()
        {
            dense_hits += 1;
        }
    }
    assert!(
        sparse_hits > dense_hits,
        "detection should separate families: sparse {sparse_hits} vs dense {dense_hits}"
    );
    assert!(sparse_hits >= 5);
}
