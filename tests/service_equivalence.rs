//! The service's equivalence contract, property-tested end to end: for
//! random query streams over gnp / planted-partition / ring-of-cliques
//! graphs, the concurrent `QueryEngine` answers (forced 4-worker pool)
//! must equal the sequential replay **and** the filter of the full
//! `enumerate_via_decomposition` witness set — the three ways of asking
//! the same question the tentpole promises are one.

use expander::SchedulerPolicy;
use expander_repro::prelude::*;
use proptest::prelude::*;
use triangle::service::{Answer, EdgeSupport, Emit, Query, QueryEngine};

/// Decodes one raw u64 into a query over `n` vertices — a deterministic
/// stand-in for a client, so proptest shrinks over streams directly.
fn decode_query(raw: u64, n: u32) -> Query {
    let roll = (raw % 100) as u32;
    let a = ((raw >> 8) % n as u64) as u32;
    let b = ((raw >> 32) % n as u64) as u32;
    if roll < 35 {
        Query::Vertex {
            v: a,
            emit: Emit::Enumerate,
        }
    } else if roll < 55 {
        Query::Vertex {
            v: a,
            emit: Emit::Count,
        }
    } else if roll < 90 {
        Query::Edge {
            u: a,
            v: b,
            emit: if roll < 75 {
                Emit::Enumerate
            } else {
                Emit::Count
            },
        }
    } else {
        Query::TopKBySupport {
            v: a,
            k: (raw >> 16) as usize % 6 + 1,
        }
    }
}

/// The reference answer, computed from the **full pipeline witness set**
/// with an independent implementation of each query's semantics.
fn reference_answer(full: &[Triangle], g: &Graph, q: Query) -> Answer {
    match q {
        Query::Vertex { v, emit } => {
            let hits: Vec<Triangle> = full.iter().copied().filter(|t| t.contains(v)).collect();
            match emit {
                Emit::Count => Answer::Count(hits.len() as u64),
                Emit::Enumerate => Answer::Triangles(hits),
            }
        }
        Query::Edge { u, v, emit } => {
            // A triangle contains the edge {u, v} iff it contains both
            // endpoints — except the degenerate u == v self-loop, which
            // no triangle contains.
            let hits: Vec<Triangle> = full
                .iter()
                .copied()
                .filter(|t| u != v && t.contains(u) && t.contains(v))
                .collect();
            match emit {
                Emit::Count => Answer::Count(hits.len() as u64),
                Emit::Enumerate => Answer::Triangles(hits),
            }
        }
        Query::TopKBySupport { v, k } => {
            let mut nbrs: Vec<VertexId> = g.neighbors(v).to_vec();
            nbrs.dedup();
            let mut edges: Vec<EdgeSupport> = nbrs
                .into_iter()
                .filter(|&u| u != v)
                .map(|u| {
                    let support = full
                        .iter()
                        .filter(|t| t.contains(u) && t.contains(v))
                        .count() as u64;
                    EdgeSupport {
                        u: v.min(u),
                        v: v.max(u),
                        support,
                    }
                })
                .collect();
            edges.sort_unstable_by(|a, b| {
                b.support
                    .cmp(&a.support)
                    .then(a.u.cmp(&b.u))
                    .then(a.v.cmp(&b.v))
            });
            edges.truncate(k);
            Answer::TopEdges(edges)
        }
    }
}

/// The shared audit: concurrent == sequential == filtered witness set.
fn audit(g: &Graph, engine: &QueryEngine, raw_stream: &[u64]) -> Result<(), TestCaseError> {
    let n = g.n() as u32;
    let queries: Vec<Query> = raw_stream.iter().map(|&r| decode_query(r, n)).collect();
    let seq = engine.serve(&queries, &SchedulerPolicy::sequential());
    let par = engine.serve(&queries, &SchedulerPolicy::with_workers(4));
    prop_assert!(
        seq.answers_match(&par),
        "4-worker answers differ from sequential replay"
    );
    // The batched dispatch (PR 9) must be invisible in the answers: the
    // per-query reference path, the auto-chunked default, and an
    // awkward explicit chunk size all agree bit-for-bit — while the
    // chunked paths actually batch (fewer scheduler jobs than queries).
    let unbatched = engine.serve_unbatched(&queries, &SchedulerPolicy::with_workers(4));
    prop_assert!(
        seq.answers_match(&unbatched),
        "per-query reference answers differ from sequential replay"
    );
    prop_assert_eq!(unbatched.stats.jobs, queries.len());
    let chunked = engine.serve_chunked(&queries, &SchedulerPolicy::with_workers(3), 7);
    prop_assert!(
        seq.answers_match(&chunked),
        "chunk-7 answers differ from sequential replay"
    );
    prop_assert!(
        par.stats.jobs < queries.len(),
        "auto-chunked serve did not batch: {} jobs for {} queries",
        par.stats.jobs,
        queries.len()
    );
    let full = enumerate_via_decomposition(g, &PipelineParams::default()).triangles;
    for (q, got) in queries.iter().zip(&seq.answers) {
        let got = got.as_ref().expect("in-range queries never error");
        let want = reference_answer(&full, g, *q);
        prop_assert_eq!(&got.answer, &want, "query {:?}", q);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn service_matches_pipeline_on_gnp(
        n in 8usize..40,
        p in 0.1f64..0.5,
        seed in any::<u64>(),
        raw in proptest::collection::vec(any::<u64>(), 40)
    ) {
        let g = gen::gnp(n, p, seed).unwrap();
        let engine = QueryEngine::build(&g, &PipelineParams::default());
        audit(&g, &engine, &raw)?;
    }

    #[test]
    fn service_matches_pipeline_on_planted_partition(
        half in 8usize..20,
        seed in any::<u64>(),
        raw in proptest::collection::vec(any::<u64>(), 40)
    ) {
        // The from_assignment path: planted blocks stand in for a cached
        // decomposition, exactly as the scale tier drives the pipeline.
        let pp = gen::planted_partition(
            &[half, half],
            0.5,
            0.1,
            seed,
        ).unwrap();
        let assignment = ClusterAssignment::from_parts(
            &pp.graph,
            &pp.blocks,
            0.1,
            &SchedulerPolicy::sequential(),
        );
        let engine = QueryEngine::from_assignment(&pp.graph, assignment, &PipelineParams::default());
        audit(&pp.graph, &engine, &raw)?;
    }

    #[test]
    fn service_matches_pipeline_on_ring_of_cliques(
        count in 3usize..7,
        size in 3usize..7,
        seed in any::<u64>(),
        raw in proptest::collection::vec(any::<u64>(), 40)
    ) {
        let (g, _) = gen::ring_of_cliques(count, size).unwrap();
        let engine = QueryEngine::build(&g, &PipelineParams { seed, ..Default::default() });
        audit(&g, &engine, &raw)?;
    }
}
