//! Engine determinism (DESIGN.md §4): sequential and parallel execution
//! of the same `VertexProgram` on the same graph must produce identical
//! `RunReport`s, identical final program states, and identical errors.
//!
//! The property is structural — a vertex's step depends only on the
//! previous round's messages and its own state, and the per-round
//! reduction is associative — but these tests prove it holds end to end
//! over randomized graphs and three program families, with the shim's
//! thread count forced above one so the parallel path really does chunk
//! work across threads.

use congest::{CongestError, Ctx, ExecMode, Network, VertexProgram};
use graph::{gen, Graph, VertexId};
use proptest::prelude::*;

/// Force real multi-threading in the parallel engine, even on one-core
/// hosts (the rayon shim reads this once, at first use).
fn force_threads() {
    std::env::set_var("RAYON_NUM_THREADS", "4");
}

/// Random connected-ish graph: a cycle unioned with `G(n, p)` noise.
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..80, any::<u64>()).prop_map(|(n, seed)| {
        let p = 3.0 / n as f64;
        let base = gen::cycle(n).unwrap();
        let noise = gen::gnp(n, p.min(0.9), seed).unwrap();
        let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
        edges.extend(noise.edges());
        Graph::from_edges(n, edges).unwrap()
    })
}

/// Family 1 — quiescence-driven max-gossip.
///
/// Every vertex floods a salted hash of its id; everyone converges to the
/// global maximum, waking halted vertices along the way, so the mail
/// flags, bit counters and max-link tracking all get exercised.
#[derive(Debug, PartialEq, Eq)]
struct Gossip {
    salt: u64,
    best: u64,
    rounds_active: u32,
}

fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z ^ (z >> 27)
}

impl VertexProgram for Gossip {
    type Msg = (u64, u8);
    fn init(&mut self, ctx: &mut Ctx<'_, Self::Msg>) {
        self.best = mix(ctx.me() as u64 ^ self.salt);
        ctx.broadcast((self.best, (self.best % 251) as u8));
    }
    fn round(&mut self, ctx: &mut Ctx<'_, Self::Msg>, inbox: &[(VertexId, Self::Msg)]) {
        self.rounds_active += 1;
        let incoming = inbox.iter().map(|&(_, (b, _))| b).max();
        if let Some(b) = incoming {
            if b > self.best {
                self.best = b;
                // Senders of smaller values still need the update; only
                // those who sent `b` itself already know it.
                let knowers: Vec<VertexId> = inbox
                    .iter()
                    .filter(|&&(_, (val, _))| val == b)
                    .map(|&(f, _)| f)
                    .collect();
                ctx.broadcast_except(&knowers, (b, (b % 251) as u8));
            }
        }
    }
    fn halted(&self) -> bool {
        true // woken only by mail
    }
}

/// Family 2 — a time-driven token walk: vertex `start` launches a token
/// with a TTL; each holder forwards it to a neighbor picked from the
/// round number, so the trajectory is rounds-dependent but execution-
/// order independent. Non-holders tick until their own horizon passes.
#[derive(Debug, PartialEq, Eq)]
struct TokenWalk {
    start: VertexId,
    horizon: usize,
    received: u32,
    last_seen_ttl: u32,
}

impl VertexProgram for TokenWalk {
    type Msg = u32;
    fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
        if ctx.me() == self.start {
            let ttl = self.horizon as u32;
            let nbrs = ctx.neighbors();
            if !nbrs.is_empty() {
                let to = nbrs[0];
                ctx.send(to, ttl);
            }
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_, u32>, inbox: &[(VertexId, u32)]) {
        for &(_, ttl) in inbox {
            self.received += 1;
            self.last_seen_ttl = ttl;
            if ttl > 0 {
                let nbrs = ctx.neighbors();
                let to = nbrs[ctx.round() % nbrs.len()];
                ctx.send(to, ttl - 1);
            }
        }
    }
    fn halted(&self) -> bool {
        true
    }
}

/// Family 3 — deliberate model violations: one rogue vertex breaks a
/// rule at a chosen round. Both modes must surface the *same* error.
/// Time-driven (vertices tick to round 4 before voting to halt), so the
/// trigger round is always reached.
#[derive(Debug)]
struct Rogue {
    me_is_rogue: bool,
    trigger_round: usize,
    kind: u8,
    ticks: usize,
}

impl VertexProgram for Rogue {
    type Msg = u64;
    fn init(&mut self, ctx: &mut Ctx<'_, u64>) {
        if self.me_is_rogue && self.trigger_round == 0 {
            self.violate(ctx);
        }
    }
    fn round(&mut self, ctx: &mut Ctx<'_, u64>, _inbox: &[(VertexId, u64)]) {
        self.ticks = ctx.round();
        if self.me_is_rogue && self.trigger_round == ctx.round() {
            self.violate(ctx);
        }
    }
    fn halted(&self) -> bool {
        self.ticks >= 4
    }
}

impl Rogue {
    fn violate(&self, ctx: &mut Ctx<'_, u64>) {
        match self.kind {
            // Send to a non-neighbor (self is never adjacent to itself in
            // the engine's neighbor lists).
            0 => ctx.send(ctx.me(), 9),
            // Duplicate send over the first incident edge.
            _ => {
                if let Some(&w) = ctx.neighbors().first() {
                    ctx.send(w, 9);
                    ctx.send(w, 9);
                }
            }
        }
    }
}

type Outcome<P> = congest::Result<(congest::RunReport, Vec<P>)>;

fn run_both<P, F>(g: &Graph, make: F, max_rounds: usize) -> (Outcome<P>, Outcome<P>)
where
    P: VertexProgram + Send,
    P::Msg: Send + Sync,
    F: Fn(VertexId) -> P,
{
    force_threads();
    let seq = Network::new(g).run_collect(&make, max_rounds);
    let par = Network::new(g)
        .with_exec_mode(ExecMode::Parallel)
        .run_collect(&make, max_rounds);
    (seq, par)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    #[test]
    fn gossip_is_mode_independent(g in arb_graph(), salt in any::<u64>()) {
        let (seq, par) = run_both(&g, |_| Gossip { salt, best: 0, rounds_active: 0 }, 10_000);
        let (seq, par) = (seq.unwrap(), par.unwrap());
        prop_assert_eq!(seq.0, par.0, "RunReports diverged");
        prop_assert_eq!(seq.1, par.1, "final program states diverged");
        // Sanity: the gossip actually converged to one value.
        let best = seq.1[0].best;
        prop_assert!(seq.1.iter().all(|p| p.best == best));
    }

    #[test]
    fn token_walk_is_mode_independent(
        g in arb_graph(), start in any::<u32>(), horizon in 1usize..120
    ) {
        let start = start % g.n() as u32;
        let (seq, par) = run_both(
            &g,
            |_| TokenWalk { start, horizon, received: 0, last_seen_ttl: 0 },
            horizon + 10,
        );
        let (seq, par) = (seq.unwrap(), par.unwrap());
        prop_assert_eq!(seq.0, par.0, "RunReports diverged");
        prop_assert_eq!(seq.1, par.1, "final program states diverged");
        prop_assert_eq!(seq.0.messages, horizon + 1, "token moves once per round");
    }

    #[test]
    fn violations_surface_the_same_error(
        g in arb_graph(), rogue in any::<u32>(), trigger in 0usize..4, kind in any::<bool>()
    ) {
        let rogue = rogue % g.n() as u32;
        let (seq, par) = run_both(
            &g,
            |v| Rogue { me_is_rogue: v == rogue, trigger_round: trigger, kind: kind as u8, ticks: 0 },
            10_000,
        );
        let seq_err = seq.map(|(r, _)| r).unwrap_err();
        let par_err = par.map(|(r, _)| r).unwrap_err();
        prop_assert_eq!(&seq_err, &par_err, "error values diverged");
        match seq_err {
            CongestError::NotANeighbor { from, .. }
            | CongestError::DuplicateSend { from, .. } => prop_assert_eq!(from, rogue),
            other => prop_assert!(false, "unexpected error {:?}", other),
        }
    }
}

/// Round-limit exhaustion must also agree between modes.
#[test]
fn round_limit_is_mode_independent() {
    #[derive(Debug, PartialEq)]
    struct Chatter;
    impl VertexProgram for Chatter {
        type Msg = u32;
        fn init(&mut self, ctx: &mut Ctx<'_, u32>) {
            ctx.broadcast(0);
        }
        fn round(&mut self, ctx: &mut Ctx<'_, u32>, _: &[(VertexId, u32)]) {
            ctx.broadcast(ctx.round() as u32);
        }
        fn halted(&self) -> bool {
            false
        }
    }
    let g = gen::cycle(12).unwrap();
    let (seq, par) = run_both(&g, |_| Chatter, 9);
    assert_eq!(seq.unwrap_err(), par.unwrap_err());
}
