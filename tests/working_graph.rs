//! Property tests for the incremental working-graph overlay and the
//! sparse/dense `VertexSet` representations (DESIGN.md §9).
//!
//! The overlay contract: after ANY sequence of removals, a
//! `WorkingGraph` must be bit-identical — adjacency, degrees, self-loop
//! compensation, edge and volume totals — to rebuilding a `Graph` from
//! scratch with `Graph::remove_edges` over the same sequence. And a
//! `VertexSet`'s observable behavior (`contains` / `iter` /
//! `complement` / set algebra) must not depend on whether it carries the
//! dense mask.

use expander_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random multigraph as (n, edges) — parallel edges and self
/// loops included, because the overlay must count multiplicities and
/// loops exactly like the rebuild.
fn arb_multigraph() -> impl Strategy<Value = Graph> {
    (3usize..32, any::<u64>()).prop_map(|(n, seed)| {
        let base = gen::gnp(n, 0.3, seed).unwrap();
        let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
        // Duplicate a prefix (parallel edges) and add a couple of loops.
        let dup: Vec<_> = edges.iter().take(edges.len() / 3).copied().collect();
        edges.extend(dup);
        edges.push((0, 0));
        edges.push(((n as VertexId) - 1, (n as VertexId) - 1));
        Graph::from_edges(n, edges).unwrap()
    })
}

/// Deterministically picks a removal sequence from `seed`: a mix of
/// present edges (possibly repeated — only one copy may go per request)
/// and absent pairs (must be ignored).
fn removal_sequence(g: &Graph, seed: u64, rounds: usize) -> Vec<Vec<(VertexId, VertexId)>> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step — cheap deterministic stream.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..rounds)
        .map(|_| {
            let batch = (next() % 4 + 1) as usize;
            (0..batch)
                .map(|_| {
                    if edges.is_empty() || next() % 5 == 0 {
                        // An arbitrary (often absent) pair.
                        let u = (next() % g.n() as u64) as VertexId;
                        let v = (next() % g.n() as u64) as VertexId;
                        (u, v)
                    } else {
                        edges[(next() % edges.len() as u64) as usize]
                    }
                })
                .collect()
        })
        .collect()
}

/// Deterministically picks a mixed insert/delete stream from `seed`:
/// present edges, absent pairs, repeated pairs, and the occasional self
/// loop — every path of the insert overlay.
fn churn_sequence(g: &Graph, seed: u64, rounds: usize) -> Vec<Vec<(bool, VertexId, VertexId)>> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut state = seed | 1;
    let mut next = move || {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..rounds)
        .map(|_| {
            let batch = (next() % 4 + 1) as usize;
            (0..batch)
                .map(|_| {
                    let insert = next() % 2 == 0;
                    if !insert && !edges.is_empty() && next() % 5 != 0 {
                        let (u, v) = edges[(next() % edges.len() as u64) as usize];
                        (false, u, v)
                    } else {
                        let u = (next() % g.n() as u64) as VertexId;
                        let v = if next() % 8 == 0 {
                            u // self loop
                        } else {
                            (next() % g.n() as u64) as VertexId
                        };
                        (insert, u, v)
                    }
                })
                .collect()
        })
        .collect()
}

/// The reference model: an explicit edge multiset plus a per-vertex loop
/// tally, rebuilt into a fresh `Graph` after every batch.
struct ModelGraph {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    loops: Vec<u32>,
}

impl ModelGraph {
    fn of(g: &Graph) -> ModelGraph {
        ModelGraph {
            n: g.n(),
            edges: g.edges().collect(),
            loops: (0..g.n() as VertexId).map(|v| g.self_loops(v)).collect(),
        }
    }

    fn apply(&mut self, insert: bool, u: VertexId, v: VertexId, compensate: bool) {
        if insert {
            if u == v {
                self.loops[u as usize] += 1;
            } else {
                self.edges.push((u, v));
            }
        } else {
            if u == v {
                return; // loop removals are ignored by contract
            }
            let hit = self
                .edges
                .iter()
                .position(|&(a, b)| (a, b) == (u, v) || (a, b) == (v, u));
            if let Some(pos) = hit {
                self.edges.remove(pos);
                if compensate {
                    self.loops[u as usize] += 1;
                    self.loops[v as usize] += 1;
                }
            }
        }
    }

    fn build(&self) -> Graph {
        let mut all = self.edges.clone();
        for (v, &c) in self.loops.iter().enumerate() {
            for _ in 0..c {
                all.push((v as VertexId, v as VertexId));
            }
        }
        Graph::from_edges(self.n, all).unwrap()
    }
}

/// Full structural equality between the overlay and a plain graph.
fn assert_overlay_matches(w: &WorkingGraph, g: &Graph) {
    assert_eq!(w.n(), g.n());
    assert_eq!(w.m(), g.m(), "live edge count");
    assert_eq!(w.total_self_loops(), g.total_self_loops());
    assert_eq!(w.total_volume(), g.total_volume());
    for v in 0..g.n() as VertexId {
        assert_eq!(w.degree(v), g.degree(v), "degree of {v}");
        assert_eq!(w.self_loops(v), g.self_loops(v), "loops at {v}");
        assert_eq!(
            w.live_neighbors(v).collect::<Vec<_>>(),
            g.neighbors(v).to_vec(),
            "adjacency of {v}"
        );
    }
    assert_eq!(&w.to_graph(), g, "materialized overlay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn overlay_matches_rebuild_after_any_removal_sequence(
        g in arb_multigraph(), seed in any::<u64>(), compensate in any::<bool>()
    ) {
        let mut overlay = WorkingGraph::new(&g);
        let mut rebuilt = g.clone();
        for batch in removal_sequence(&g, seed, 6) {
            overlay.remove_edges(batch.iter().copied(), compensate);
            rebuilt = rebuilt.remove_edges(batch.iter().copied(), compensate);
            assert_overlay_matches(&overlay, &rebuilt);
        }
        if compensate {
            // Degree preservation: the whole point of loop compensation.
            for v in 0..g.n() as VertexId {
                prop_assert_eq!(overlay.degree(v), g.degree(v));
            }
        }
        // Subgraph extraction reads through the overlay identically.
        let s = VertexSet::from_fn(g.n(), |v| v % 2 == 0);
        let via_overlay = Subgraph::loop_augmented(&overlay, &s);
        let via_rebuild = Subgraph::loop_augmented(&rebuilt, &s);
        prop_assert_eq!(via_overlay.graph(), via_rebuild.graph());
        prop_assert_eq!(
            overlay.internal_edges(&s),
            rebuilt.internal_edges(&s)
        );
    }

    #[test]
    fn overlay_matches_rebuild_under_mixed_churn(
        g in arb_multigraph(), seed in any::<u64>(), compensate in any::<bool>()
    ) {
        let mut overlay = WorkingGraph::new(&g);
        let mut model = ModelGraph::of(&g);
        for batch in churn_sequence(&g, seed, 6) {
            for (insert, u, v) in batch {
                if insert {
                    overlay.insert_edges([(u, v)]);
                } else {
                    overlay.remove_edges([(u, v)], compensate);
                }
                model.apply(insert, u, v, compensate);
            }
            let rebuilt = model.build();
            assert_overlay_matches(&overlay, &rebuilt);
            // Multiplicity reads through both overlays of a pair.
            for u in 0..g.n() as VertexId {
                for v in u..g.n() as VertexId {
                    let want = if u == v {
                        rebuilt.self_loops(u) as usize
                    } else {
                        rebuilt.neighbors(u).iter().filter(|&&w| w == v).count()
                    };
                    prop_assert_eq!(overlay.multiplicity(u, v), want, "({}, {})", u, v);
                    prop_assert_eq!(overlay.has_edge(u, v), want > 0);
                }
            }
        }
        // Subgraph extraction reads through the insert overlay too.
        let rebuilt = model.build();
        let s = VertexSet::from_fn(g.n(), |v| v % 2 == 0);
        let via_overlay = Subgraph::loop_augmented(&overlay, &s);
        let via_rebuild = Subgraph::loop_augmented(&rebuilt, &s);
        prop_assert_eq!(via_overlay.graph(), via_rebuild.graph());
        prop_assert_eq!(overlay.internal_edges(&s), rebuilt.internal_edges(&s));
    }

    #[test]
    fn compensated_churn_preserves_degrees_up_to_inserts(
        g in arb_multigraph(), seed in any::<u64>()
    ) {
        // Under compensation, degree(v) may only move by the inserts
        // incident to v — removals are degree-neutral by Theorem 1's
        // convention. Loop inserts count 1, edge inserts count 1 per end.
        let mut overlay = WorkingGraph::new(&g);
        let mut incident = vec![0usize; g.n()];
        for batch in churn_sequence(&g, seed, 6) {
            for (insert, u, v) in batch {
                if insert {
                    if overlay.insert_edges([(u, v)]) == 1 {
                        incident[u as usize] += 1;
                        if u != v {
                            incident[v as usize] += 1;
                        }
                    }
                } else {
                    overlay.remove_edges([(u, v)], true);
                }
            }
        }
        for v in 0..g.n() as VertexId {
            prop_assert_eq!(
                overlay.degree(v),
                g.degree(v) + incident[v as usize],
                "degree of {}",
                v
            );
        }
    }

    #[test]
    fn delete_then_reinsert_is_the_identity(
        g in arb_multigraph(), seed in any::<u64>()
    ) {
        // Tear out a batch of real edges, reinsert the same multiset in a
        // scrambled order: the overlay must land bit-identical to the
        // base graph (pure slot resurrection, empty insert rows).
        let mut overlay = WorkingGraph::new(&g);
        let victims: Vec<(VertexId, VertexId)> = removal_sequence(&g, seed, 3)
            .concat()
            .into_iter()
            .filter(|&(u, v)| u != v)
            .collect();
        let removed: Vec<(VertexId, VertexId)> = victims
            .iter()
            .copied()
            .filter(|&(u, v)| overlay.remove_edges([(u, v)], false) == 1)
            .collect();
        let mut back = removed.clone();
        back.reverse();
        for (u, v) in back {
            prop_assert_eq!(overlay.insert_edges([(v, u)]), 1);
        }
        assert_overlay_matches(&overlay, &g);
    }

    #[test]
    fn vertex_set_promotes_under_insert_growth(
        n in 256usize..600, seed in any::<u64>()
    ) {
        // Growing a sparse set one insert at a time must flip to the
        // dense mask exactly when the advertised threshold is crossed
        // (len >= 64 and len·4 >= universe), with observable behaviour
        // identical throughout.
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        let mut set = VertexSet::empty(n);
        let mut reference = std::collections::BTreeSet::new();
        prop_assert!(!set.is_dense());
        for _ in 0..n {
            let v = (next() % n as u64) as VertexId;
            prop_assert_eq!(set.insert(v), reference.insert(v));
            prop_assert_eq!(
                set.is_dense(),
                set.len() >= 64 && set.len() * 4 >= n,
                "promotion point with len {} of {}",
                set.len(),
                n
            );
        }
        prop_assert!(set.is_dense(), "n/4 random draws of n cross the threshold");
        prop_assert_eq!(
            set.iter().collect::<Vec<_>>(),
            reference.iter().copied().collect::<Vec<_>>()
        );
        for v in 0..n as VertexId {
            prop_assert_eq!(set.contains(v), reference.contains(&v));
        }
    }

    #[test]
    fn sparse_and_dense_vertex_sets_agree(
        n in 1usize..600, picks in proptest::collection::vec(any::<u32>(), 48)
    ) {
        // The same membership built sparsely (from members) and densely
        // (from a predicate); every density regime from empty to full.
        let members: Vec<VertexId> =
            picks.iter().map(|&p| (p as usize % n) as VertexId).collect();
        let sparse = VertexSet::from_iter(n, members.iter().copied());
        let dense = VertexSet::from_fn(n, |v| members.contains(&v));
        prop_assert_eq!(&sparse, &dense);
        for v in 0..n as VertexId {
            prop_assert_eq!(sparse.contains(v), dense.contains(v), "contains({})", v);
        }
        prop_assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            dense.iter().collect::<Vec<_>>()
        );

        // Complement: exact, involutive, representation-independent.
        let comp = sparse.complement();
        prop_assert_eq!(comp.len(), n - sparse.len());
        for v in 0..n as VertexId {
            prop_assert_eq!(comp.contains(v), !dense.contains(v));
        }
        prop_assert_eq!(comp.complement(), sparse);

        // Set algebra against a dense interval set.
        let half = VertexSet::from_fn(n, |v| (v as usize) < n / 2);
        let union = sparse.union(&half);
        let inter = sparse.intersection(&half);
        let diff = sparse.difference(&half);
        for v in 0..n as VertexId {
            let s = sparse.contains(v);
            let h = half.contains(v);
            prop_assert_eq!(union.contains(v), s || h);
            prop_assert_eq!(inter.contains(v), s && h);
            prop_assert_eq!(diff.contains(v), s && !h);
        }
        // |A| + |B| = |A ∪ B| + |A ∩ B|.
        prop_assert_eq!(sparse.len() + half.len(), union.len() + inter.len());

        // Incremental inserts converge to the same set regardless of the
        // density promotions they trigger along the way.
        let mut grown = VertexSet::empty(n);
        for &v in &members {
            grown.insert(v);
        }
        prop_assert_eq!(&grown, &sparse);
    }
}
