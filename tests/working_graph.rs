//! Property tests for the incremental working-graph overlay and the
//! sparse/dense `VertexSet` representations (DESIGN.md §9).
//!
//! The overlay contract: after ANY sequence of removals, a
//! `WorkingGraph` must be bit-identical — adjacency, degrees, self-loop
//! compensation, edge and volume totals — to rebuilding a `Graph` from
//! scratch with `Graph::remove_edges` over the same sequence. And a
//! `VertexSet`'s observable behavior (`contains` / `iter` /
//! `complement` / set algebra) must not depend on whether it carries the
//! dense mask.

use expander_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random multigraph as (n, edges) — parallel edges and self
/// loops included, because the overlay must count multiplicities and
/// loops exactly like the rebuild.
fn arb_multigraph() -> impl Strategy<Value = Graph> {
    (3usize..32, any::<u64>()).prop_map(|(n, seed)| {
        let base = gen::gnp(n, 0.3, seed).unwrap();
        let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
        // Duplicate a prefix (parallel edges) and add a couple of loops.
        let dup: Vec<_> = edges.iter().take(edges.len() / 3).copied().collect();
        edges.extend(dup);
        edges.push((0, 0));
        edges.push(((n as VertexId) - 1, (n as VertexId) - 1));
        Graph::from_edges(n, edges).unwrap()
    })
}

/// Deterministically picks a removal sequence from `seed`: a mix of
/// present edges (possibly repeated — only one copy may go per request)
/// and absent pairs (must be ignored).
fn removal_sequence(g: &Graph, seed: u64, rounds: usize) -> Vec<Vec<(VertexId, VertexId)>> {
    let edges: Vec<(VertexId, VertexId)> = g.edges().collect();
    let mut state = seed | 1;
    let mut next = move || {
        // SplitMix64 step — cheap deterministic stream.
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    };
    (0..rounds)
        .map(|_| {
            let batch = (next() % 4 + 1) as usize;
            (0..batch)
                .map(|_| {
                    if edges.is_empty() || next() % 5 == 0 {
                        // An arbitrary (often absent) pair.
                        let u = (next() % g.n() as u64) as VertexId;
                        let v = (next() % g.n() as u64) as VertexId;
                        (u, v)
                    } else {
                        edges[(next() % edges.len() as u64) as usize]
                    }
                })
                .collect()
        })
        .collect()
}

/// Full structural equality between the overlay and a plain graph.
fn assert_overlay_matches(w: &WorkingGraph, g: &Graph) {
    assert_eq!(w.n(), g.n());
    assert_eq!(w.m(), g.m(), "live edge count");
    assert_eq!(w.total_self_loops(), g.total_self_loops());
    assert_eq!(w.total_volume(), g.total_volume());
    for v in 0..g.n() as VertexId {
        assert_eq!(w.degree(v), g.degree(v), "degree of {v}");
        assert_eq!(w.self_loops(v), g.self_loops(v), "loops at {v}");
        assert_eq!(
            w.live_neighbors(v).collect::<Vec<_>>(),
            g.neighbors(v).to_vec(),
            "adjacency of {v}"
        );
    }
    assert_eq!(&w.to_graph(), g, "materialized overlay");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn overlay_matches_rebuild_after_any_removal_sequence(
        g in arb_multigraph(), seed in any::<u64>(), compensate in any::<bool>()
    ) {
        let mut overlay = WorkingGraph::new(&g);
        let mut rebuilt = g.clone();
        for batch in removal_sequence(&g, seed, 6) {
            overlay.remove_edges(batch.iter().copied(), compensate);
            rebuilt = rebuilt.remove_edges(batch.iter().copied(), compensate);
            assert_overlay_matches(&overlay, &rebuilt);
        }
        if compensate {
            // Degree preservation: the whole point of loop compensation.
            for v in 0..g.n() as VertexId {
                prop_assert_eq!(overlay.degree(v), g.degree(v));
            }
        }
        // Subgraph extraction reads through the overlay identically.
        let s = VertexSet::from_fn(g.n(), |v| v % 2 == 0);
        let via_overlay = Subgraph::loop_augmented(&overlay, &s);
        let via_rebuild = Subgraph::loop_augmented(&rebuilt, &s);
        prop_assert_eq!(via_overlay.graph(), via_rebuild.graph());
        prop_assert_eq!(
            overlay.internal_edges(&s),
            rebuilt.internal_edges(&s)
        );
    }

    #[test]
    fn sparse_and_dense_vertex_sets_agree(
        n in 1usize..600, picks in proptest::collection::vec(any::<u32>(), 48)
    ) {
        // The same membership built sparsely (from members) and densely
        // (from a predicate); every density regime from empty to full.
        let members: Vec<VertexId> =
            picks.iter().map(|&p| (p as usize % n) as VertexId).collect();
        let sparse = VertexSet::from_iter(n, members.iter().copied());
        let dense = VertexSet::from_fn(n, |v| members.contains(&v));
        prop_assert_eq!(&sparse, &dense);
        for v in 0..n as VertexId {
            prop_assert_eq!(sparse.contains(v), dense.contains(v), "contains({})", v);
        }
        prop_assert_eq!(
            sparse.iter().collect::<Vec<_>>(),
            dense.iter().collect::<Vec<_>>()
        );

        // Complement: exact, involutive, representation-independent.
        let comp = sparse.complement();
        prop_assert_eq!(comp.len(), n - sparse.len());
        for v in 0..n as VertexId {
            prop_assert_eq!(comp.contains(v), !dense.contains(v));
        }
        prop_assert_eq!(comp.complement(), sparse);

        // Set algebra against a dense interval set.
        let half = VertexSet::from_fn(n, |v| (v as usize) < n / 2);
        let union = sparse.union(&half);
        let inter = sparse.intersection(&half);
        let diff = sparse.difference(&half);
        for v in 0..n as VertexId {
            let s = sparse.contains(v);
            let h = half.contains(v);
            prop_assert_eq!(union.contains(v), s || h);
            prop_assert_eq!(inter.contains(v), s && h);
            prop_assert_eq!(diff.contains(v), s && !h);
        }
        // |A| + |B| = |A ∪ B| + |A ∩ B|.
        prop_assert_eq!(sparse.len() + half.len(), union.len() + inter.len());

        // Incremental inserts converge to the same set regardless of the
        // density promotions they trigger along the way.
        let mut grown = VertexSet::empty(n);
        for &v in &members {
            grown.insert(v);
        }
        prop_assert_eq!(&grown, &sparse);
    }
}
