//! Property-based tests (proptest) for the core invariants listed in
//! DESIGN.md §5.

use expander_repro::prelude::*;
use proptest::prelude::*;

/// Strategy: a random connected-ish graph as (n, edge list).
fn arb_graph() -> impl Strategy<Value = Graph> {
    (4usize..40, any::<u64>()).prop_map(|(n, seed)| {
        let p = 2.5 / n as f64;
        // Union a cycle with G(n,p) so the graph is connected.
        let base = gen::cycle(n).unwrap();
        let noise = gen::gnp(n, p.min(0.9), seed).unwrap();
        let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
        edges.extend(noise.edges());
        Graph::from_edges(n, edges).unwrap()
    })
}

fn arb_subset(n: usize) -> impl Strategy<Value = Vec<bool>> {
    proptest::collection::vec(any::<bool>(), n)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn volume_identity(g in arb_graph(), mask in arb_subset(40)) {
        let s = VertexSet::from_fn(g.n(), |v| mask[v as usize % mask.len()]);
        let vol_s = g.volume(&s);
        let vol_rest = g.volume(&s.complement());
        prop_assert_eq!(vol_s + vol_rest, g.total_volume());
    }

    #[test]
    fn boundary_is_symmetric(g in arb_graph(), mask in arb_subset(40)) {
        let s = VertexSet::from_fn(g.n(), |v| mask[v as usize % mask.len()]);
        prop_assert_eq!(g.boundary(&s), g.boundary(&s.complement()));
    }

    #[test]
    fn loop_augmented_conductance_never_exceeds_induced(
        g in arb_graph(), mask in arb_subset(40)
    ) {
        // Φ(G{S}) ≤ Φ(G[S]) — the paper's §1 observation. Compare the
        // minimum sweep conductance of both views over a fixed order.
        let s = VertexSet::from_fn(g.n(), |v| mask[v as usize % mask.len()]);
        prop_assume!(s.len() >= 3);
        let ind = Subgraph::induced(&g, &s);
        let aug = Subgraph::loop_augmented(&g, &s);
        let order: Vec<VertexId> = (0..ind.graph().n() as VertexId).collect();
        let phi_ind = spectral::sweep_cut(ind.graph(), &order).map(|c| c.conductance);
        let phi_aug = spectral::sweep_cut(aug.graph(), &order).map(|c| c.conductance);
        if let (Ok(i), Ok(a)) = (phi_ind, phi_aug) {
            prop_assert!(a <= i + 1e-9, "aug {a} > ind {i}");
        }
    }

    #[test]
    fn walk_mass_is_conserved_then_monotone_under_truncation(
        g in arb_graph(), start in 0u32..40, eps in 1e-6f64..1e-2
    ) {
        let start = start % g.n() as u32;
        let mut exact = WalkDistribution::dirac(&g, start);
        let mut truncated = WalkDistribution::dirac(&g, start);
        for _ in 0..6 {
            exact.step(&g);
            truncated.step(&g);
            truncated.truncate(&g, eps);
            prop_assert!((exact.total_mass() - 1.0).abs() < 1e-9);
            prop_assert!(truncated.total_mass() <= exact.total_mass() + 1e-12);
        }
        // Pointwise domination.
        for v in 0..g.n() as u32 {
            prop_assert!(truncated.mass(v) <= exact.mass(v) + 1e-12);
        }
    }

    #[test]
    fn decomposition_is_partition_with_budget(g in arb_graph(), seed in any::<u64>()) {
        let eps = 0.3;
        let result = ExpanderDecomposition::builder()
            .epsilon(eps)
            .seed(seed)
            .build()
            .run(&g)
            .unwrap();
        // Partition.
        let mut seen = vec![false; g.n()];
        for p in &result.parts {
            for v in p.iter() {
                prop_assert!(!seen[v as usize], "duplicate vertex {v}");
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b), "missing vertex");
        // Budget.
        prop_assert!(result.inter_cluster_fraction() <= eps + 1e-9);
        // Degree preservation.
        let stripped = g.remove_edges(
            result.removed_edges.iter().map(|&(u, v, _)| (u, v)),
            true,
        );
        for v in 0..g.n() as VertexId {
            prop_assert_eq!(stripped.degree(v), g.degree(v));
        }
    }

    #[test]
    fn triangle_enumeration_complete_on_random_graphs(
        n in 6usize..30, seed in any::<u64>()
    ) {
        let g = gen::gnp(n, 0.35, seed).unwrap();
        let truth = enumerate_triangles(&g);
        let congest = congest_enumerate(&g, &TriangleConfig::default());
        prop_assert_eq!(&congest.triangles, &truth);
        let clique = clique_enumerate(&g);
        prop_assert_eq!(&clique.triangles, &truth);
    }

    #[test]
    fn ldd_outputs_partition_and_diameter_bound(
        n in 20usize..80, seed in any::<u64>(), beta in 0.15f64..0.5
    ) {
        let g = gen::gnp(n, 3.0 / n as f64, seed).unwrap();
        let params = LddParams::practical(beta, n);
        let out = low_diameter_decomposition(&g, &params, seed);
        let mut seen = vec![false; n];
        for p in &out.parts {
            for v in p.iter() {
                prop_assert!(!seen[v as usize]);
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.iter().all(|&b| b));
        // Diameter bound O(log²n/β²) with a generous constant.
        if let Some(d) = out.max_part_diameter(&g) {
            let ln_n = (n as f64).ln();
            let bound = 20.0 * (ln_n / beta) * (ln_n / beta) + 4.0;
            prop_assert!((d as f64) <= bound, "diameter {d} > bound {bound}");
        }
    }

    #[test]
    fn mpx_clusters_are_partitions(n in 10usize..60, seed in any::<u64>()) {
        let g = gen::gnp(n, 4.0 / n as f64, seed).unwrap();
        let c = clustering(&g, 0.3, seed);
        prop_assert_eq!(c.cluster_of.len(), n);
        // Every vertex's cluster id must itself map to its own id (center).
        for &cid in &c.cluster_of {
            prop_assert_eq!(c.cluster_of[cid as usize], cid, "center invariant");
        }
    }

    #[test]
    fn edge_list_roundtrip(g in arb_graph()) {
        let text = graph::io::to_edge_list(&g);
        let back = graph::io::from_edge_list(&text).unwrap();
        prop_assert_eq!(g, back);
    }

    #[test]
    fn cut_conductance_bounds(g in arb_graph(), mask in arb_subset(40)) {
        let s = VertexSet::from_fn(g.n(), |v| mask[v as usize % mask.len()]);
        if let Ok(cut) = Cut::new(&g, s) {
            prop_assert!(cut.conductance() >= 0.0);
            prop_assert!(cut.conductance() <= 1.0 + 1e-12);
            prop_assert!(cut.balance() <= 0.5 + 1e-12);
        }
    }
}
