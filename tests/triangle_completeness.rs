//! Theorem 2 end-to-end: the CONGEST enumeration and the DLP clique
//! baseline must both report exactly the ground-truth triangle set, on
//! every family.

use expander_repro::prelude::*;

fn families() -> Vec<(&'static str, Graph)> {
    vec![
        ("gnp_sparse", gen::gnp(60, 0.08, 1).unwrap()),
        ("gnp_dense", gen::gnp(48, 0.4, 2).unwrap()),
        (
            "sbm",
            gen::planted_partition(&[25, 25], 0.5, 0.05, 3)
                .unwrap()
                .graph,
        ),
        ("ring_of_cliques", gen::ring_of_cliques(5, 6).unwrap().0),
        ("complete", gen::complete(14).unwrap()),
        ("barbell", gen::barbell(9).unwrap().0),
        ("triangle_free_grid", gen::grid(6, 6).unwrap()),
        ("chung_lu", gen::chung_lu(70, 2.6, 7.0, 4).unwrap()),
    ]
}

#[test]
fn congest_enumeration_is_complete() {
    for (name, g) in families() {
        let truth = enumerate_triangles(&g);
        let out = congest_enumerate(&g, &TriangleConfig::default());
        assert_eq!(out.triangles, truth, "{name}: CONGEST listing incomplete");
    }
}

#[test]
fn clique_enumeration_is_complete() {
    for (name, g) in families() {
        let truth = enumerate_triangles(&g);
        let out = clique_enumerate(&g);
        assert_eq!(out.triangles, truth, "{name}: DLP listing incomplete");
    }
}

#[test]
fn congest_handles_adversarial_cross_cluster_triangles() {
    // Plant triangles whose edges all cross cluster boundaries: take a
    // ring of cliques and wire one vertex from each of three consecutive
    // cliques into a triangle.
    let (base, _) = gen::ring_of_cliques(6, 5).unwrap();
    let mut edges: Vec<(VertexId, VertexId)> = base.edges().collect();
    edges.extend([(2, 8), (8, 13), (2, 13), (7, 18), (18, 23), (7, 23)]);
    let g = Graph::from_edges(30, edges).unwrap();
    let truth = enumerate_triangles(&g);
    let out = congest_enumerate(&g, &TriangleConfig::default());
    assert_eq!(out.triangles, truth);
}

#[test]
fn recursion_terminates_within_log_levels() {
    let g = gen::gnp(80, 0.2, 9).unwrap();
    let out = congest_enumerate(&g, &TriangleConfig::default());
    // ε ≤ 1/6 per level ⇒ levels ≤ log_6(m) + 1.
    let bound = (g.m() as f64).log(6.0).ceil() as usize + 1;
    assert!(
        out.levels.len() <= bound,
        "{} levels exceeds log_6(m) bound {bound}",
        out.levels.len()
    );
}

#[test]
fn both_models_agree_with_each_other() {
    for seed in 0..3 {
        let g = gen::gnp(50, 0.25, seed).unwrap();
        let a = congest_enumerate(&g, &TriangleConfig::default());
        let b = clique_enumerate(&g);
        assert_eq!(a.triangles, b.triangles, "seed {seed}");
    }
}

#[test]
fn counting_matches_enumeration() {
    let g = gen::planted_partition(&[20, 20, 20], 0.4, 0.05, 8)
        .unwrap()
        .graph;
    assert_eq!(count_triangles(&g) as usize, enumerate_triangles(&g).len());
}
