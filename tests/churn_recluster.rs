//! Recluster-scope regression (DESIGN.md §15): deleting intra-cluster
//! edges until one planted block's φ certificate breaks must re-decompose
//! ONLY that block. The untouched blocks' frozen artifacts must ride into
//! the refrozen engine by `Arc` pointer — the regression this test pins
//! is a rebuild that silently falls back to re-cutting (or re-freezing)
//! the whole graph.

use expander_repro::prelude::*;
use std::sync::Arc;
use triangle::{DeltaLedger, EdgeOp};

/// Builds an engine directly from the planted blocks so cluster ids map
/// 1:1 onto blocks and the φ threshold is known exactly.
fn planted_engine(
    pp: &gen::PlantedPartition,
    phi: f64,
    params: &PipelineParams,
) -> Arc<QueryEngine> {
    let assignment =
        ClusterAssignment::from_parts(&pp.graph, &pp.blocks, phi, &params.scheduler_policy());
    Arc::new(QueryEngine::from_assignment(&pp.graph, assignment, params))
}

/// Every intra-block edge of `block`, in base-graph orientation.
fn internal_edges(g: &Graph, block: &VertexSet) -> Vec<(VertexId, VertexId)> {
    g.edges()
        .filter(|&(u, v)| block.contains(u) && block.contains(v))
        .collect()
}

#[test]
fn shredding_one_block_reclusters_only_that_block() {
    let pp = gen::planted_partition(&[24, 24, 24], 0.7, 0.01, 17).unwrap();
    let params = PipelineParams {
        seed: 17,
        ..Default::default()
    };
    let engine = planted_engine(&pp, 0.05, &params);
    let old_clusters = engine.assignment().cluster_count();
    assert_eq!(old_clusters, 3, "one cluster per planted block");
    let mut ledger = DeltaLedger::new(&pp.graph, Arc::clone(&engine));

    // Shred block 0 from the inside: delete every internal edge. Its
    // conductance certificate cannot survive (the kept-induced subgraph
    // is empty), while blocks 1 and 2 see no applied op at all.
    let doomed: Vec<EdgeOp> = internal_edges(&pp.graph, &pp.blocks[0])
        .into_iter()
        .map(|(u, v)| EdgeOp::Delete(u, v))
        .collect();
    assert!(doomed.len() > 100, "the planted block must be dense");
    let report = ledger.apply(&doomed);
    assert_eq!(report.applied, doomed.len());
    assert_eq!(report.touched_clusters, 1, "only block 0 is dirtied");
    assert_eq!(ledger.dirty_clusters(), 1);

    let rebuild = ledger.rebuild(&params);

    // Scope: exactly one certificate checked, and it broke.
    assert_eq!(rebuild.checked, 1, "only the dirty cluster is certified");
    assert_eq!(rebuild.broken, 1, "the shredded block's certificate breaks");
    assert_eq!(rebuild.reused, 2, "both untouched blocks ride along");
    assert!(
        rebuild.rebuilt >= 1,
        "the broken block re-decomposes into at least one new cluster"
    );

    // The untouched blocks' artifacts are the SAME allocations as the old
    // engine's — pointer equality, not just equal contents.
    let new = &rebuild.engine;
    let mut shared_with_old = 0;
    for c in 0..new.assignment().cluster_count() {
        for old_c in 0..old_clusters {
            if new.shares_cluster_artifact(c, &engine, old_c) {
                shared_with_old += 1;
            }
        }
    }
    assert_eq!(
        shared_with_old, 2,
        "exactly the two untouched blocks are Arc-shared"
    );

    // Sanity: the refrozen engine answers like a fresh build on the
    // shredded graph (charges excluded by the refreeze contract).
    let final_g = ledger.working().to_graph();
    let fresh = QueryEngine::build(&final_g, &params);
    for v in 0..final_g.n() as VertexId {
        let q = Query::Vertex {
            v,
            emit: Emit::Count,
        };
        assert_eq!(
            new.answer(q).unwrap().answer,
            fresh.answer(q).unwrap().answer,
            "vertex {v}"
        );
    }
}

#[test]
fn healthy_blocks_survive_light_churn_without_recut() {
    // A light touch inside one block dirties it, but its certificate
    // holds: the part must be KEPT (same member set) even though its
    // artifact refreezes, and the other blocks stay pointer-shared.
    let pp = gen::planted_partition(&[24, 24, 24], 0.7, 0.01, 19).unwrap();
    let params = PipelineParams {
        seed: 19,
        ..Default::default()
    };
    let engine = planted_engine(&pp, 0.05, &params);
    let mut ledger = DeltaLedger::new(&pp.graph, Arc::clone(&engine));

    let members: Vec<VertexId> = pp.blocks[1].iter().collect();
    ledger.apply(&[
        EdgeOp::Insert(members[0], members[1]),
        EdgeOp::Insert(members[2], members[3]),
    ]);
    let rebuild = ledger.rebuild(&params);

    assert_eq!(rebuild.checked, 1);
    assert_eq!(rebuild.broken, 0, "two extra internal edges break nothing");
    assert_eq!(rebuild.reused, 2);
    assert_eq!(rebuild.rebuilt, 1, "the certified block refreezes in place");
    assert_eq!(
        rebuild.engine.assignment().cluster_count(),
        3,
        "the partition itself is unchanged"
    );
    // Same member sets as the planted blocks, in some order.
    let new_assignment = rebuild.engine.assignment();
    for block in &pp.blocks {
        let c = new_assignment.cluster_of[block.iter().next().unwrap() as usize];
        let found: VertexSet = VertexSet::from_iter(
            pp.graph.n(),
            (0..pp.graph.n() as VertexId).filter(|&v| new_assignment.cluster_of[v as usize] == c),
        );
        assert_eq!(&found, block, "kept block must keep its members");
    }
}
