//! # expander-repro
//!
//! A full reproduction of **Chang & Saranurak, “Improved Distributed
//! Expander Decomposition and Nearly Optimal Triangle Enumeration”
//! (PODC 2019)** as a Rust workspace. This facade crate re-exports the
//! whole stack:
//!
//! | layer | crate | paper artifact |
//! |---|---|---|
//! | [`graph`] | graph substrate | `Vol`, `∂(S)`, `Φ(S)`, `G{S}`, generators, spectral tools |
//! | [`congest`] | CONGEST / CONGESTED-CLIQUE simulator | the model of §1 |
//! | [`expander`] | expander decomposition | Theorems 1, 3, 4 |
//! | [`routing`] | GKS expander routing | the §3 preprocessing/query trade-off |
//! | [`triangle`] | triangle enumeration | Theorem 2 + the DLP clique baseline |
//! | [`storage`] | on-disk CSR ingestion | real-graph datasets, zero-copy loading, frozen artifacts |
//! | [`server`] | wire frontend | TCP serving of point queries, hot-swap artifact reloads |
//!
//! # Quickstart
//!
//! ```
//! use expander_repro::prelude::*;
//!
//! // A graph with obvious cluster structure…
//! let (g, _) = graph::gen::ring_of_cliques(6, 8)?;
//!
//! // …expander-decompose it (Theorem 1)…
//! let result = ExpanderDecomposition::builder()
//!     .epsilon(0.3)
//!     .k(2)
//!     .seed(7)
//!     .build()
//!     .run(&g)?;
//! assert!(result.inter_cluster_fraction() <= 0.3);
//!
//! // …and verify the certificate.
//! let report = verify_decomposition(&g, &result);
//! assert!(report.is_partition && report.edge_budget_ok());
//!
//! // Triangle enumeration (Theorem 2) agrees with ground truth.
//! let listed = triangle::congest_enumerate(&g, &Default::default());
//! assert_eq!(listed.triangles.len() as u64, triangle::count_triangles(&g));
//! # Ok::<(), graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use congest;
pub use expander;
pub use graph;
pub use routing;
pub use server;
pub use storage;
pub use triangle;

/// One-stop imports for examples and downstream users.
pub mod prelude {
    pub use congest::{Ctx, ExecMode, Network, RunReport, VertexProgram};
    pub use expander::prelude::*;
    pub use graph::prelude::*;
    pub use routing::{QueryCharge, RoutingHierarchy, RoutingRequest};
    pub use server::{
        serve_engine, serve_path, Client, ClientError, Frame, Opcode, ProtocolError, ResponseBody,
        ServerConfig, ServerHandle, WireError, WireResponse,
    };
    pub use storage::{convert_edge_list, write_graph, ConvertOptions, CsrFile, CsrView};
    pub use triangle::{
        clique_enumerate, congest_enumerate, count_triangles, enumerate_triangles,
        enumerate_via_decomposition, enumerate_with_assignment, Packing, PipelineParams, Triangle,
        TriangleConfig, TriangleReport,
    };
    pub use triangle::{Answer, Emit, Query, QueryEngine, QueryOutcome, ServeReport, ServiceError};
    pub use triangle::{BatchReport, ChurnPolicy, DeltaLedger, EdgeOp, RebuildReport};
    pub use triangle::{FrozenEngine, RestoreError};
}
